package core

import (
	"time"

	"sprite/internal/metrics"
	"sprite/internal/sim"
)

// migMeter drives the metrics plane's view of one migration: the in-flight
// gauge, started/completed/aborted counters, and one span per phase
// (mig.phase.negotiate, mig.phase.vm.<strategy>, mig.phase.streams,
// mig.phase.pcb, mig.phase.resume). An aborted migration records no phase
// duration — the interrupted phase surfaces through mig.aborted.<phase>
// and mig.phase.<name>.aborted counters instead — so the latency series
// contain only completed work and the invariant started == completed +
// aborted + inflight holds at every instant.
type migMeter struct {
	reg   *metrics.Registry
	span  *metrics.Span
	phase string
	done  bool
}

func newMigMeter(reg *metrics.Registry) *migMeter {
	reg.Counter("mig.started").Inc()
	reg.Gauge("mig.inflight").Add(1)
	return &migMeter{reg: reg}
}

// next closes the current phase span, opens the next one, and returns the
// closed phase's duration (zero for the first call).
func (m *migMeter) next(env *sim.Env, phase string) time.Duration {
	return m.nextAt(phase, env.Now())
}

// nextAt is next with an explicit boundary time. Overlapped phases use it to
// keep the spans tiling Total exactly: when stream transfer runs concurrently
// with the VM transfer, the vm span is closed retroactively at the instant
// the VM work finished and the streams span covers only the tail that
// outlived it (zero if the streams finished first).
func (m *migMeter) nextAt(phase string, at time.Duration) time.Duration {
	d := m.span.End(at)
	m.phase = phase
	m.span = m.reg.StartSpan("mig.phase."+phase, at)
	return d
}

// complete closes the final phase span and retires the migration as
// completed, returning the final phase's duration.
func (m *migMeter) complete(env *sim.Env) time.Duration {
	if m.done {
		return 0
	}
	m.done = true
	d := m.span.End(env.Now())
	m.reg.Gauge("mig.inflight").Add(-1)
	m.reg.Counter("mig.completed").Inc()
	return d
}

// abort retires the migration as aborted, charging the interruption to the
// phase that was in flight.
func (m *migMeter) abort(env *sim.Env) {
	if m.done {
		return
	}
	m.done = true
	m.span.Abort(env.Now())
	m.reg.Gauge("mig.inflight").Add(-1)
	m.reg.Counter("mig.aborted").Inc()
	if m.phase != "" {
		m.reg.Counter("mig.aborted." + m.phase).Inc()
	}
}

// observeTotals records the finished migration's whole-record series: total
// and freeze latency (overall and per strategy) plus the byte/page/file
// volume counters.
func (m *migMeter) observeTotals(rec *MigrationRecord) {
	m.reg.Timing("mig.total").Observe(rec.Total)
	m.reg.Timing("mig.total." + rec.Strategy).Observe(rec.Total)
	m.reg.Timing("mig.freeze").Observe(rec.Freeze)
	m.reg.Counter("mig.vm_bytes").Add(int64(rec.VMBytes))
	m.reg.Counter("mig.files_moved").Add(int64(rec.Files))
	m.reg.Counter("mig.pages_flushed").Add(int64(rec.PagesFlushed))
	m.reg.Counter("mig.pages_copied").Add(int64(rec.PagesCopied))
	if rec.ExecTime {
		m.reg.Counter("mig.exec_time").Inc()
	}
	if rec.Residual {
		m.reg.Counter("mig.residual").Inc()
	}
	if rec.Batched {
		m.reg.Counter("mig.batch.migrations").Inc()
		m.reg.Counter("mig.batch.runs").Add(int64(rec.BatchRuns))
		m.reg.Counter("mig.batch.fragments").Add(int64(rec.BatchFragments))
		m.reg.Counter("mig.batch.retransmits").Add(int64(rec.BatchRetransmits))
	}
}
