package core

import (
	"time"

	"sprite/internal/metrics"
	"sprite/internal/sim"
)

// migMeter drives the metrics plane's view of one migration: the
// started/completed/aborted counters and one span per phase
// (mig.phase.negotiate, mig.phase.vm.<strategy>, mig.phase.streams,
// mig.phase.pcb, mig.phase.resume). An aborted migration records no phase
// duration — the interrupted phase surfaces through mig.aborted.<phase>
// and mig.phase.<name>.aborted counters instead — so the latency series
// contain only completed work and the invariant started == completed +
// aborted + inflight holds at every instant.
//
// The whole meter runs on the migration hot path, which the parallel
// kernel dispatches confined — so every counter and timing goes through
// the worker slot's private cell (Counter.IncSlot/AddSlot,
// Timing.ObserveSlot), and there is no live in-flight gauge at all: a
// shared gauge's high-water mark depends on the cross-shard interleaving.
// mig.inflight is instead derived from the counters at snapshot time
// (Cluster.MetricsSnapshot), where the identity above makes the level
// exact at any exclusive point.
type migMeter struct {
	reg   *metrics.Registry
	span  *metrics.Span
	phase string
	done  bool
}

func newMigMeter(env *sim.Env, reg *metrics.Registry) *migMeter {
	reg.Counter("mig.started").IncSlot(sim.WorkerSlot(env))
	return &migMeter{reg: reg}
}

// next closes the current phase span, opens the next one, and returns the
// closed phase's duration (zero for the first call).
func (m *migMeter) next(env *sim.Env, phase string) time.Duration {
	return m.nextAt(env, phase, env.Now())
}

// nextAt is next with an explicit boundary time. Overlapped phases use it to
// keep the spans tiling Total exactly: when stream transfer runs concurrently
// with the VM transfer, the vm span is closed retroactively at the instant
// the VM work finished and the streams span covers only the tail that
// outlived it (zero if the streams finished first).
func (m *migMeter) nextAt(env *sim.Env, phase string, at time.Duration) time.Duration {
	d := m.span.EndSlot(sim.WorkerSlot(env), at)
	m.phase = phase
	m.span = m.reg.StartSpan("mig.phase."+phase, at)
	return d
}

// complete closes the final phase span and retires the migration as
// completed, returning the final phase's duration.
func (m *migMeter) complete(env *sim.Env) time.Duration {
	if m.done {
		return 0
	}
	m.done = true
	slot := sim.WorkerSlot(env)
	d := m.span.EndSlot(slot, env.Now())
	m.reg.Counter("mig.completed").IncSlot(slot)
	return d
}

// abort retires the migration as aborted, charging the interruption to the
// phase that was in flight. Aborts only happen under the serial kernel —
// the confined contract excludes every abort trigger — but the slot calls
// cost nothing there (slot 0 is the shared base cell) and keep the meter
// uniformly shard-safe.
func (m *migMeter) abort(env *sim.Env) {
	if m.done {
		return
	}
	m.done = true
	slot := sim.WorkerSlot(env)
	m.span.AbortSlot(slot, env.Now())
	m.reg.Counter("mig.aborted").IncSlot(slot)
	if m.phase != "" {
		m.reg.Counter("mig.aborted." + m.phase).IncSlot(slot)
	}
}

// observeTotals records the finished migration's whole-record series: total
// and freeze latency (overall and per strategy) plus the byte/page/file
// volume counters.
func (m *migMeter) observeTotals(env *sim.Env, rec *MigrationRecord) {
	slot := sim.WorkerSlot(env)
	m.reg.Timing("mig.total").ObserveSlot(slot, rec.Total)
	m.reg.Timing("mig.total." + rec.Strategy).ObserveSlot(slot, rec.Total)
	m.reg.Timing("mig.freeze").ObserveSlot(slot, rec.Freeze)
	m.reg.Counter("mig.vm_bytes").AddSlot(slot, int64(rec.VMBytes))
	m.reg.Counter("mig.files_moved").AddSlot(slot, int64(rec.Files))
	m.reg.Counter("mig.pages_flushed").AddSlot(slot, int64(rec.PagesFlushed))
	m.reg.Counter("mig.pages_copied").AddSlot(slot, int64(rec.PagesCopied))
	if rec.ExecTime {
		m.reg.Counter("mig.exec_time").IncSlot(slot)
	}
	if rec.Residual {
		m.reg.Counter("mig.residual").IncSlot(slot)
	}
	if rec.Batched {
		m.reg.Counter("mig.batch.migrations").IncSlot(slot)
		m.reg.Counter("mig.batch.runs").AddSlot(slot, int64(rec.BatchRuns))
		m.reg.Counter("mig.batch.fragments").AddSlot(slot, int64(rec.BatchFragments))
		m.reg.Counter("mig.batch.retransmits").AddSlot(slot, int64(rec.BatchRetransmits))
	}
}
