package core

import (
	"testing"
	"time"

	"sprite/internal/sim"
)

// TestPipeSurvivesMigrationOfBothEnds: a producer/consumer pair connected
// by a pipe keeps communicating while each end migrates — the thesis's IPC
// transparency property (§3.2).
func TestPipeSurvivesMigrationOfBothEnds(t *testing.T) {
	c := newCluster(t, 4)
	h0, h1, h2, h3 := c.Workstation(0), c.Workstation(1), c.Workstation(2), c.Workstation(3)
	var received string
	c.Boot("boot", func(env *sim.Env) error {
		parent, err := h0.StartProcess(env, "pair", func(ctx *Ctx) error {
			rfd, wfd, err := ctx.Pipe()
			if err != nil {
				return err
			}
			// Producer child: writes, migrates, writes again.
			if _, err := ctx.Fork("producer", func(cc *Ctx) error {
				if err := cc.Close(rfd); err != nil { // unused end
					return err
				}
				if _, err := cc.Write(wfd, []byte("one ")); err != nil {
					return err
				}
				if err := cc.Migrate(h1.Host()); err != nil {
					return err
				}
				if _, err := cc.Write(wfd, []byte("two ")); err != nil {
					return err
				}
				if err := cc.Migrate(h2.Host()); err != nil {
					return err
				}
				if _, err := cc.Write(wfd, []byte("three")); err != nil {
					return err
				}
				return cc.Close(wfd)
			}, smallProc); err != nil {
				return err
			}
			// Consumer child: reads across its own migration.
			if _, err := ctx.Fork("consumer", func(cc *Ctx) error {
				if err := cc.Close(wfd); err != nil { // unused end
					return err
				}
				var got []byte
				first := true
				for {
					data, err := cc.Read(rfd, 64)
					if err != nil {
						return err
					}
					if len(data) == 0 {
						break
					}
					got = append(got, data...)
					if first {
						first = false
						if err := cc.Migrate(h3.Host()); err != nil {
							return err
						}
					}
				}
				received = string(got)
				return cc.Close(rfd)
			}, smallProc); err != nil {
				return err
			}
			// Parent drops its own references so EOF can happen.
			if err := ctx.Close(rfd); err != nil {
				return err
			}
			if err := ctx.Close(wfd); err != nil {
				return err
			}
			for i := 0; i < 2; i++ {
				if _, _, err := ctx.Wait(); err != nil {
					return err
				}
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = parent.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if received != "one two three" {
		t.Fatalf("received %q, want %q", received, "one two three")
	}
}

// TestForwardAllBaselineSlowdown: under the Remote UNIX design every call
// of a foreign process pays a trip home, so even location-independent calls
// like getpid become RPC-priced — the §4.3.1 argument for Sprite's
// selective forwarding.
func TestForwardAllBaselineSlowdown(t *testing.T) {
	measure := func(forwardAll bool) time.Duration {
		c := newCluster(t, 2)
		src, dst := c.Workstation(0), c.Workstation(1)
		dst.SetForwardAll(forwardAll)
		var elapsed time.Duration
		c.Boot("boot", func(env *sim.Env) error {
			p, err := src.StartProcess(env, "caller", func(ctx *Ctx) error {
				if err := ctx.Migrate(dst.Host()); err != nil {
					return err
				}
				t0 := ctx.Now()
				for i := 0; i < 50; i++ {
					if _, err := ctx.GetPID(); err != nil {
						return err
					}
				}
				elapsed = ctx.Now() - t0
				return nil
			}, smallProc)
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		runCluster(t, c)
		return elapsed
	}
	selective := measure(false)
	forwardAll := measure(true)
	if forwardAll < 5*selective {
		t.Fatalf("forward-all getpid loop %v should be >> selective %v", forwardAll, selective)
	}
}

// TestForwardAllDoesNotDoubleChargeHomeCalls: a call that is already
// home-forwarded costs the same under both regimes.
func TestForwardAllDoesNotDoubleChargeHomeCalls(t *testing.T) {
	measure := func(forwardAll bool) time.Duration {
		c := newCluster(t, 2)
		src, dst := c.Workstation(0), c.Workstation(1)
		dst.SetForwardAll(forwardAll)
		var elapsed time.Duration
		c.Boot("boot", func(env *sim.Env) error {
			p, err := src.StartProcess(env, "caller", func(ctx *Ctx) error {
				if err := ctx.Migrate(dst.Host()); err != nil {
					return err
				}
				t0 := ctx.Now()
				for i := 0; i < 20; i++ {
					if _, err := ctx.GetTimeOfDay(); err != nil {
						return err
					}
				}
				elapsed = ctx.Now() - t0
				return nil
			}, smallProc)
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			return err
		})
		runCluster(t, c)
		return elapsed
	}
	selective := measure(false)
	forwardAll := measure(true)
	if forwardAll != selective {
		t.Fatalf("gettimeofday cost differs: selective %v vs forward-all %v", selective, forwardAll)
	}
}
