package core

import (
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/vm"
)

// TransferStrategy is how a migration moves the process's virtual memory.
// The thesis surveys four designs (Ch. 2 and 4); Sprite's contribution is
// the backing-store flush, and the others are implemented as ablations.
type TransferStrategy interface {
	// Name identifies the strategy in records and tables.
	Name() string
	// Transfer moves p's address space from src to dst, charging costs and
	// filling in rec.
	Transfer(env *sim.Env, src, dst *Kernel, p *Process, rec *MigrationRecord) error
	// TargetPager returns the pager the process uses on the target after
	// migration.
	TargetPager(src, dst *Kernel) vm.Pager
}

// SpriteFlushStrategy is Sprite's design: write dirty pages to the shared
// backing file, discard the resident set, and let the target demand-page
// from the file server. No residual dependency on the source host — only on
// the (already trusted) file server.
type SpriteFlushStrategy struct{}

var _ TransferStrategy = SpriteFlushStrategy{}

// Name implements TransferStrategy.
func (SpriteFlushStrategy) Name() string { return "sprite-flush" }

// Transfer implements TransferStrategy. With the batched data plane enabled
// the dirty set flushes as coalesced page runs through fs.writeBulk — one
// handshake and a pipelined fragment stream per run — instead of one
// synchronous RPC per block.
func (SpriteFlushStrategy) Transfer(env *sim.Env, src, dst *Kernel, p *Process, rec *MigrationRecord) error {
	if p.space == nil {
		return nil
	}
	if b := src.params.Batch; b.Enabled {
		n, bs, err := p.space.FlushDirtyBulk(env, src.fsc, b.MaxRunPages)
		if err != nil {
			return err
		}
		rec.PagesFlushed = n
		rec.VMBytes = n * src.params.VM.PageSize
		noteBatch(rec, bs)
	} else {
		n, err := p.space.FlushDirty(env, src.fsc)
		if err != nil {
			return err
		}
		rec.PagesFlushed = n
		rec.VMBytes = n * src.params.VM.PageSize
	}
	for _, seg := range p.space.Segments() {
		seg.InvalidateAll()
	}
	return nil
}

// TargetPager implements TransferStrategy: normal file-system paging on the
// target — through the readahead pager when batching is on, so the process
// repopulates its resident set in runs.
func (SpriteFlushStrategy) TargetPager(src, dst *Kernel) vm.Pager {
	if b := dst.params.Batch; b.Enabled && b.PrefetchPages > 1 {
		return &vm.ReadaheadPager{Client: dst.fsc, Window: b.PrefetchPages}
	}
	return &vm.FilePager{Client: dst.fsc}
}

// noteBatch folds one bulk transfer's wire stats into the record.
func noteBatch(rec *MigrationRecord, bs rpc.BulkStats) {
	rec.Batched = true
	rec.BatchRuns += bs.Calls
	rec.BatchFragments += bs.Fragments
	rec.BatchRetransmits += bs.Retransmits
}

// sendPages ships a block of pages from src to dst: over the bulk path (one
// k.migPages transfer of pipelined fragments) when batching is enabled,
// otherwise as one legacy network send.
func sendPages(env *sim.Env, src, dst *Kernel, p *Process, rec *MigrationRecord, pages, pageBytes int) error {
	if b := src.params.Batch; b.Enabled {
		_, bs, err := src.ep.CallBulk(env, dst.host, "k.migPages", migPagesArgs{
			PID: p.pid, Pages: pages,
		}, 32, pages*pageBytes, rpc.BulkOut)
		if err != nil {
			return err
		}
		noteBatch(rec, bs)
		return nil
	}
	return src.cluster.net.Send(env, pages*pageBytes)
}

// FullCopyStrategy ships the entire resident image directly to the target
// at migration time, as in Charlotte and LOCUS. Simple, no residual
// dependency, but the process is frozen for the whole (size-proportional)
// transfer.
type FullCopyStrategy struct{}

var _ TransferStrategy = FullCopyStrategy{}

// Name implements TransferStrategy.
func (FullCopyStrategy) Name() string { return "full-copy" }

// Transfer implements TransferStrategy.
func (FullCopyStrategy) Transfer(env *sim.Env, src, dst *Kernel, p *Process, rec *MigrationRecord) error {
	if p.space == nil {
		return nil
	}
	pageBytes := src.params.VM.PageSize + src.params.PageWireOverhead
	pages := 0
	for _, seg := range p.space.Segments() {
		pages += seg.ResidentCount()
	}
	if pages > 0 {
		if err := sendPages(env, src, dst, p, rec, pages, pageBytes); err != nil {
			return err
		}
	}
	// Pages arrive resident on the target with their dirty bits intact, so
	// nothing is re-fetched and nothing was written to backing store.
	rec.PagesCopied = pages
	rec.VMBytes = pages * pageBytes
	return nil
}

// TargetPager implements TransferStrategy.
func (FullCopyStrategy) TargetPager(src, dst *Kernel) vm.Pager {
	return &vm.FilePager{Client: dst.fsc}
}

// CopyOnReferenceStrategy transfers only the page tables; the target pulls
// pages from the source as the process references them (Accent/Zayas).
// Migration itself is nearly instantaneous, but the process drags a
// residual dependency on the source for the rest of its life.
type CopyOnReferenceStrategy struct{}

var _ TransferStrategy = CopyOnReferenceStrategy{}

// Name implements TransferStrategy.
func (CopyOnReferenceStrategy) Name() string { return "copy-on-reference" }

// Transfer implements TransferStrategy.
func (CopyOnReferenceStrategy) Transfer(env *sim.Env, src, dst *Kernel, p *Process, rec *MigrationRecord) error {
	if p.space == nil {
		return nil
	}
	// Ship page tables only: a few words per page.
	tableBytes := p.space.TotalPages() * 8
	if tableBytes > 0 {
		if err := src.cluster.net.Send(env, tableBytes); err != nil {
			return err
		}
	}
	rec.VMBytes = tableBytes
	rec.Residual = true
	for _, seg := range p.space.Segments() {
		seg.InvalidateAll()
	}
	return nil
}

// TargetPager implements TransferStrategy: faults pull pages from the
// source host.
func (CopyOnReferenceStrategy) TargetPager(src, dst *Kernel) vm.Pager {
	return &corPager{src: src, dst: dst}
}

// PreCopyStrategy is the V System's design: copy the address space while
// the process keeps running, then re-copy the pages dirtied during the
// copy, repeating until the dirty set is small; only the final pass freezes
// the process. Total work grows (pages are copied more than once) but the
// freeze time shrinks.
type PreCopyStrategy struct {
	// RedirtyPagesPerSec models how fast the still-running process dirties
	// pages during the background copy passes.
	RedirtyPagesPerSec float64
	// FreezeThresholdPages ends pre-copying when the dirty set is at most
	// this many pages (default 16).
	FreezeThresholdPages int
	// MaxPasses bounds the number of pre-copy passes (default 5).
	MaxPasses int
}

var _ TransferStrategy = PreCopyStrategy{}

// Name implements TransferStrategy.
func (PreCopyStrategy) Name() string { return "pre-copy" }

// Transfer implements TransferStrategy.
func (s PreCopyStrategy) Transfer(env *sim.Env, src, dst *Kernel, p *Process, rec *MigrationRecord) error {
	if p.space == nil {
		return nil
	}
	threshold := s.FreezeThresholdPages
	if threshold <= 0 {
		threshold = 16
	}
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 5
	}
	pageBytes := src.params.VM.PageSize + src.params.PageWireOverhead
	perPage := src.cluster.net.TransferTime(pageBytes)

	// First pass: all resident pages, while the process "runs".
	toCopy := 0
	for _, seg := range p.space.Segments() {
		toCopy += seg.ResidentCount()
	}
	copied := 0
	batched := src.params.Batch.Enabled
	for pass := 0; pass < maxPasses && toCopy > threshold; pass++ {
		t0 := env.Now()
		if err := sendPages(env, src, dst, p, rec, toCopy, pageBytes); err != nil {
			return err
		}
		copied += toCopy
		// Pages dirtied during this pass must be re-sent. The legacy path
		// keeps its analytic pass-time estimate; the bulk path measures the
		// pass it actually took (pipelining makes the estimate wrong).
		passTime := time.Duration(toCopy) * perPage
		if batched {
			passTime = env.Now() - t0
		}
		redirtied := int(s.RedirtyPagesPerSec * passTime.Seconds())
		if redirtied > toCopy {
			redirtied = toCopy
		}
		toCopy = redirtied
	}
	// Final, frozen pass.
	tFreeze := env.Now()
	if toCopy > 0 {
		if err := sendPages(env, src, dst, p, rec, toCopy, pageBytes); err != nil {
			return err
		}
		copied += toCopy
	}
	rec.Freeze = env.Now() - tFreeze
	rec.PagesCopied = copied
	rec.VMBytes = copied * pageBytes
	return nil
}

// TargetPager implements TransferStrategy.
func (PreCopyStrategy) TargetPager(src, dst *Kernel) vm.Pager {
	return &vm.FilePager{Client: dst.fsc}
}
