package core

import (
	"fmt"
	"testing"
	"time"

	"sprite/internal/sim"
)

// TestPsListingTransparency: a migrated process appears (with its remote
// location) in its HOME machine's listing, and not at all in the remote
// machine's home listing.
func TestPsListingTransparency(t *testing.T) {
	c := newCluster(t, 2)
	home, away := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "visible", func(ctx *Ctx) error {
			if err := ctx.Migrate(away.Host()); err != nil {
				return err
			}
			return ctx.Compute(2 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		rows := home.ListHomeProcesses()
		if len(rows) != 1 {
			t.Fatalf("home ps rows = %d, want 1", len(rows))
		}
		if rows[0].PID != p.PID() || !rows[0].Foreign || rows[0].Location != away.Host() {
			t.Errorf("home ps row = %+v", rows[0])
		}
		if got := away.ListHomeProcesses(); len(got) != 0 {
			t.Errorf("remote host's home listing shows %d rows, want 0", len(got))
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

// TestChaos runs a randomized storm of process starts, migrations,
// evictions, and kills across several seeds — for every VM transfer strategy,
// over both the batched and the legacy data plane — then checks conservation
// invariants: every started process exits exactly once, no process table
// entries or home records leak, and per-kernel migration counters balance.
func TestChaos(t *testing.T) {
	strategies := []TransferStrategy{
		SpriteFlushStrategy{},
		FullCopyStrategy{},
		CopyOnReferenceStrategy{},
		PreCopyStrategy{RedirtyPagesPerSec: 100},
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		strategy := strategies[int(seed-1)%len(strategies)]
		for _, batched := range []bool{true, false} {
			batched := batched
			mode := "legacy"
			if batched {
				mode = "batched"
			}
			t.Run(fmt.Sprintf("seed%d-%s-%s", seed, strategy.Name(), mode), func(t *testing.T) {
				const hosts = 5
				params := DefaultParams()
				params.Batch.Enabled = batched
				c, err := NewCluster(Options{Workstations: hosts, FileServers: 1, Seed: seed, Params: &params})
				if err != nil {
					t.Fatal(err)
				}
				c.SetStrategyAll(strategy)
				if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
					t.Fatal(err)
				}
				ws := c.Workstations()
				var procs []*Process
				c.Boot("chaos", func(env *sim.Env) error {
					rng := env.Rand()
					// Start a population of workers with mixed lifetimes.
					for i := 0; i < 25; i++ {
						k := ws[rng.Intn(hosts)]
						life := time.Duration(100+rng.Intn(3000)) * time.Millisecond
						p, err := k.StartProcess(env, fmt.Sprintf("w%d", i), func(ctx *Ctx) error {
							if err := ctx.TouchHeap(0, 4, true); err != nil {
								return err
							}
							return ctx.Compute(life)
						}, smallProc)
						if err != nil {
							return err
						}
						procs = append(procs, p)
						if err := env.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond); err != nil {
							return err
						}
					}
					// Storm: random migrations, evictions, kills.
					for i := 0; i < 60; i++ {
						if err := env.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond); err != nil {
							return err
						}
						switch rng.Intn(4) {
						case 0, 1: // migrate a random live process
							p := procs[rng.Intn(len(procs))]
							if p.State() != StateRunning {
								continue
							}
							target := ws[rng.Intn(hosts)]
							done := p.Current().RequestMigration(p, target, "chaos")
							// Don't wait: let it happen (or fail) concurrently.
							_ = done
						case 2: // evict a random host
							k := ws[rng.Intn(hosts)]
							if err := k.EvictAll(env); err != nil {
								return err
							}
						case 3: // kill a random process
							p := procs[rng.Intn(len(procs))]
							if p.State() != StateRunning {
								continue
							}
							p.post(SigKill)
						}
					}
					// Join everything.
					for _, p := range procs {
						if _, err := p.Exited().Wait(env); err != nil {
							return err
						}
					}
					return nil
				})
				if err := c.Run(0); err != nil {
					t.Fatal(err)
				}
				// Invariants.
				var started, exited uint64
				var in, out uint64
				for _, k := range ws {
					st := k.Stats()
					started += st.ProcsStarted
					exited += st.ProcsExited
					in += st.MigrationsIn
					out += st.MigrationsOut
					if n := len(k.Processes()); n != 0 {
						t.Errorf("%v still has %d processes", k.Host(), n)
					}
					if n := k.HomeProcessCount(); n != 0 {
						t.Errorf("%v still has %d home records", k.Host(), n)
					}
				}
				if started != 25 {
					t.Errorf("started = %d, want 25", started)
				}
				// Exits are counted at the host where each process ended.
				if exited != 25 {
					t.Errorf("exited = %d, want 25", exited)
				}
				if in != out {
					t.Errorf("migrations in (%d) != out (%d)", in, out)
				}
				if c.Sim().LiveActivities() != 0 {
					t.Errorf("leaked %d activities", c.Sim().LiveActivities())
				}
				if v := c.CheckInvariants(true); len(v) != 0 {
					t.Errorf("invariants violated: %v", v)
				}
			})
		}
	}
}
