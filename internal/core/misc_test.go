package core

import (
	"testing"
	"time"

	"sprite/internal/fs"
	"sprite/internal/sim"
)

// TestMiscSyscalls exercises the remaining kernel-call surface in one
// process: seek, dup (shared offsets), code touching, rename, readdir, and
// timestamp stat.
func TestMiscSyscalls(t *testing.T) {
	c := newCluster(t, 1)
	if err := c.Seed("/dir/one", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Seed("/dir/two", []byte("2")); err != nil {
		t.Fatal(err)
	}
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "misc", func(ctx *Ctx) error {
			// Code faulting through the binary.
			if err := ctx.TouchCode(4); err != nil {
				return err
			}
			// Seek + Dup share one access position.
			fd, err := ctx.Open("/dir/one", fs.ReadWriteMode, fs.OpenOptions{})
			if err != nil {
				return err
			}
			if _, err := ctx.Write(fd, []byte("abcdef")); err != nil {
				return err
			}
			dup, err := ctx.Dup(fd)
			if err != nil {
				return err
			}
			if err := ctx.Seek(fd, 1); err != nil {
				return err
			}
			got, err := ctx.Read(dup, 2) // dup shares the seeked offset
			if err != nil {
				return err
			}
			if string(got) != "bc" {
				t.Errorf("dup read %q, want bc", got)
			}
			if err := ctx.Close(fd); err != nil {
				return err
			}
			if err := ctx.Close(dup); err != nil {
				return err
			}
			// Rename + ReadDir through the syscall layer.
			if err := ctx.Rename("/dir/two", "/dir/three"); err != nil {
				return err
			}
			names, err := ctx.ReadDir("/dir")
			if err != nil {
				return err
			}
			if len(names) != 2 || names[0] != "one" || names[1] != "three" {
				t.Errorf("readdir = %v", names)
			}
			// StatTimes reflects the recent write.
			size, mtime, err := ctx.StatTimes("/dir/one")
			if err != nil {
				return err
			}
			if size != 6 {
				t.Errorf("size = %d, want 6", size)
			}
			if mtime <= 0 {
				t.Errorf("mtime = %v, want > 0 after write", mtime)
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

// TestNonEvictableProcessStays: marking a process non-evictable exempts it
// from host reclaiming (Sprite let daemons opt out).
func TestNonEvictableProcessStays(t *testing.T) {
	c := newCluster(t, 2)
	home, lent := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "daemonish", func(ctx *Ctx) error {
			ctx.Process().SetEvictable(false)
			if err := ctx.Migrate(lent.Host()); err != nil {
				return err
			}
			return ctx.Compute(5 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		if err := lent.EvictAll(env); err != nil {
			return err
		}
		if p.Current() != lent {
			t.Errorf("non-evictable process was moved to %v", p.Current().Host())
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if lent.Stats().Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", lent.Stats().Evictions)
	}
}

// TestStringersAreStable pins the small String methods used in traces and
// table output.
func TestStringersAreStable(t *testing.T) {
	cases := []struct {
		got  string
		want string
	}{
		{PID{Home: 3, Seq: 7}.String(), "host3.7"},
		{StateRunning.String(), "running"},
		{StateMigrating.String(), "migrating"},
		{StateExited.String(), "exited"},
		{SigKill.String(), "SIGKILL"},
		{SigCont.String(), "SIGCONT"},
		{PolicyHome.String(), "forwarded-home"},
		{PolicyDenied.String(), "denied"},
	}
	for _, cse := range cases {
		if cse.got != cse.want {
			t.Errorf("got %q, want %q", cse.got, cse.want)
		}
	}
}
