package core

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// bigProc gives failure tests enough heap to make VM transfer interesting.
var bigProc = ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 32, StackPages: 2}

// TestMigrationToDownHostAbortsCleanly: if the target is unreachable the
// migration fails before any state moves, and the process keeps running at
// the source (Charlotte-style abort-before-commit; Sprite's handshake gives
// the same property).
func TestMigrationToDownHostAbortsCleanly(t *testing.T) {
	c := newCluster(t, 2)
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Transport().Endpoint(dst.Host()).SetDown(true)
	var merr error
	var finishedOn rpc.HostID
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "survivor", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			merr = ctx.Migrate(dst.Host())
			// Life goes on at the source.
			if err := ctx.Compute(50 * time.Millisecond); err != nil {
				return err
			}
			finishedOn = ctx.Process().Current().Host()
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if !errors.Is(merr, rpc.ErrHostDown) {
		t.Fatalf("migrate err = %v, want ErrHostDown", merr)
	}
	if finishedOn != src.Host() {
		t.Fatalf("finished on %v, want source %v", finishedOn, src.Host())
	}
	if src.Stats().MigrationsOut != 0 {
		t.Fatal("aborted migration was counted as completed")
	}
}

// residualHarness runs: start on home, migrate home->A, migrate A->B, then
// host A fail-stops through the fault plane while the process tries to
// touch its memory on B. It returns the error the process observed on that
// touch, and checks the cluster invariants once the run settles (the crash
// scrubs A's file and process state, so nothing may leak or double-count).
func residualHarness(t *testing.T, strategy TransferStrategy) error {
	t.Helper()
	c := newCluster(t, 3)
	c.SetStrategyAll(strategy)
	home, hostA, hostB := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	var touchErr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "wanderer", func(ctx *Ctx) error {
			if err := ctx.TouchHeap(0, 32, true); err != nil {
				return err
			}
			if err := ctx.Migrate(hostA.Host()); err != nil {
				return err
			}
			// Re-touch on A so the pages live there (matters for COR).
			if err := ctx.TouchHeap(0, 32, true); err != nil {
				return err
			}
			if err := ctx.Migrate(hostB.Host()); err != nil {
				return err
			}
			// A fail-stops: does the process still run?
			c.CrashHost(env, hostA.Host())
			touchErr = ctx.TouchHeap(0, 32, false)
			return nil
		}, bigProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Errorf("invariants violated after crash run: %v", v)
	}
	return touchErr
}

// TestResidualDependencyAcrossStrategies pits the thesis's central
// robustness claim against all four VM transfer strategies: copy-on-
// reference leaves the process dependent on its last source host for the
// rest of its life (the touch fails when that host fail-stops), while
// Sprite's backing-store flush, full copy, and pre-copy all move or flush
// the state out and survive the same crash.
func TestResidualDependencyAcrossStrategies(t *testing.T) {
	cases := []struct {
		name     string
		strategy TransferStrategy
		residual bool
	}{
		{"copy-on-reference", CopyOnReferenceStrategy{}, true},
		{"sprite-flush", SpriteFlushStrategy{}, false},
		{"full-copy", FullCopyStrategy{}, false},
		{"pre-copy", PreCopyStrategy{RedirtyPagesPerSec: 100}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := residualHarness(t, tc.strategy)
			if tc.residual {
				if !errors.Is(err, rpc.ErrHostDown) {
					t.Fatalf("touch err = %v, want ErrHostDown (residual dependency)", err)
				}
			} else if err != nil {
				t.Fatalf("touch err = %v, want nil (no residual dependency)", err)
			}
		})
	}
}

// TestEvictionTargetPolicyReSelect: the eviction-destination ablation — an
// installed policy sends evicted processes to another idle host instead of
// home.
func TestEvictionTargetPolicyReSelect(t *testing.T) {
	c := newCluster(t, 3)
	home, lent, spare := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	lent.SetEvictionTarget(func(env *sim.Env, p *Process) *Kernel {
		return spare
	})
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "guest", func(ctx *Ctx) error {
			if err := ctx.Migrate(lent.Host()); err != nil {
				return err
			}
			return ctx.Compute(30 * time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		if err := lent.EvictAll(env); err != nil {
			return err
		}
		if p.Current() != spare {
			t.Errorf("evicted to %v, want spare %v", p.Current().Host(), spare.Host())
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

// TestDoubleMigrationTransparency: two hops later, pid, hostname, and home
// forwarding still resolve to the home machine, and the home record tracks
// the latest location.
func TestDoubleMigrationTransparency(t *testing.T) {
	c := newCluster(t, 3)
	home, a, b := c.Workstation(0), c.Workstation(1), c.Workstation(2)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "hopper", func(ctx *Ctx) error {
			if err := ctx.Migrate(a.Host()); err != nil {
				return err
			}
			if err := ctx.Migrate(b.Host()); err != nil {
				return err
			}
			host, err := ctx.GetHostname()
			if err != nil {
				return err
			}
			if host != home.Host().String() {
				t.Errorf("hostname after two hops = %v, want home", host)
			}
			return ctx.Compute(time.Second)
		}, smallProc)
		if err != nil {
			return err
		}
		if err := env.Sleep(500 * time.Millisecond); err != nil {
			return err
		}
		loc, err := home.LocationOf(p.PID())
		if err != nil {
			return err
		}
		if loc != b.Host() {
			t.Errorf("home record location = %v, want %v", loc, b.Host())
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
	if p := c.Workstation(1).Stats(); p.MigrationsIn != 1 || p.MigrationsOut != 1 {
		t.Fatalf("intermediate host stats = %+v", p)
	}
}

// TestMigrationBackHome: migrating home again clears the foreign state and
// forwarding costs disappear.
func TestMigrationBackHome(t *testing.T) {
	c := newCluster(t, 2)
	home, away := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := home.StartProcess(env, "returner", func(ctx *Ctx) error {
			if err := ctx.Migrate(away.Host()); err != nil {
				return err
			}
			t0 := ctx.Now()
			if _, err := ctx.GetTimeOfDay(); err != nil {
				return err
			}
			awayCost := ctx.Now() - t0
			if err := ctx.Migrate(home.Host()); err != nil {
				return err
			}
			if ctx.Process().Foreign() {
				t.Error("process still foreign after migrating home")
			}
			t0 = ctx.Now()
			if _, err := ctx.GetTimeOfDay(); err != nil {
				return err
			}
			homeCost := ctx.Now() - t0
			if homeCost >= awayCost {
				t.Errorf("home gettimeofday %v should be cheaper than away %v", homeCost, awayCost)
			}
			return nil
		}, smallProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	runCluster(t, c)
}

// TestConcurrentMigrationsDoNotInterfere: several processes migrating at
// once between disjoint host pairs all arrive intact.
func TestConcurrentMigrationsDoNotInterfere(t *testing.T) {
	c := newCluster(t, 6)
	c.Boot("boot", func(env *sim.Env) error {
		var procs []*Process
		for i := 0; i < 3; i++ {
			src, dst := c.Workstation(i), c.Workstation(3+i)
			p, err := src.StartProcess(env, "mover", func(ctx *Ctx) error {
				if err := ctx.TouchHeap(0, 16, true); err != nil {
					return err
				}
				if err := ctx.Migrate(dst.Host()); err != nil {
					return err
				}
				if ctx.Process().Current() != dst {
					t.Errorf("landed on %v, want %v", ctx.Process().Current().Host(), dst.Host())
				}
				return ctx.TouchHeap(0, 16, false)
			}, bigProc)
			if err != nil {
				return err
			}
			procs = append(procs, p)
		}
		for _, p := range procs {
			if _, err := p.Exited().Wait(env); err != nil {
				return err
			}
		}
		return nil
	})
	runCluster(t, c)
	if got := len(c.MigrationRecords()); got != 3 {
		t.Fatalf("migrations = %d, want 3", got)
	}
}
