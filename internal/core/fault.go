package core

import (
	"fmt"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// This file is the kernel half of the fault plane: named mid-migration
// failure points, fail-stop host crash and restart, and the process ledger
// behind the exactly-once exit invariant. With no failpoint installed and no
// crash injected, nothing here perturbs a run — golden outputs stay
// bit-identical.

// FailpointFunc decides whether a named migration step fails. It runs in
// the migrating process's activity at the end of the step; a non-nil error
// aborts the migration there and drives the real abort-recovery path.
// Points: "mig.init", "mig.vm", "mig.streams", "mig.pcb" (the exec-time
// variant skips "mig.vm").
type FailpointFunc func(env *sim.Env, name string, pid PID) error

// SetFailpoint installs (or with nil removes) the migration failpoint hook.
func (c *Cluster) SetFailpoint(fn FailpointFunc) { c.failpoint = fn }

func (c *Cluster) failAt(env *sim.Env, name string, pid PID) error {
	if c.failpoint == nil {
		return nil
	}
	return c.failpoint(env, name, pid)
}

// --- process ledger ---

func (c *Cluster) noteStart(pid PID) { c.ledgerStarted[pid]++ }
func (c *Cluster) noteEnd(pid PID)   { c.ledgerEnded[pid]++ }

// --- host crash and restart ---

// CrashHost fail-stops a host: its endpoint goes down, every process
// executing on it is destroyed, every process whose *home* it is dies
// wherever it runs (home records are the soft state that makes migration
// transparent; without a home machine the process has no identity — Sprite's
// home-dependency semantics), and the file system runs its recovery
// protocol, scrubbing the host's open state from every server.
//
// Processes executing ON the crashed host unwind immediately without
// running any more simulated work. Processes merely HOMED there die through
// the ordinary kill path at their next migration point, closing their
// descriptors for real — their kernels are still alive.
func (c *Cluster) CrashHost(env *sim.Env, host rpc.HostID) {
	if ep := c.transport.Endpoint(host); ep != nil {
		ep.SetDown(true)
	}
	if k := c.kernels[host]; k != nil {
		for _, p := range k.Processes() {
			if p.cur != k {
				// A skeleton installed by an in-flight migration whose
				// switch-over has not happened: it dies with the host; the
				// migrating process aborts back to its source.
				delete(k.procs, p.pid)
				continue
			}
			c.destroyProcess(env, p, host)
		}
		for _, rec := range k.homeRecords() {
			p := rec.proc
			if w := rec.waiter; w != nil {
				// A parent blocked in Wait at this (its home) machine: wake
				// it with the crash so it can unwind.
				rec.waiter = nil
				w.Complete(nil, ErrHostCrashed)
			}
			if p.state == StateExited || p.crashed || p.cur == k {
				continue
			}
			p.post(SigKill)
		}
		k.homeRecs = make(map[PID]*homeRecord)
	}
	c.fs.ScrubHost(host)
	c.emit(env.Now(), "host-crash", fmt.Sprintf("host %v", host))
}

// RestartHost brings a crashed host back with empty tables. Its pid
// sequence keeps counting (Sprite pids encode an incarnation-safe sequence),
// so pids from before the crash are never reused.
func (c *Cluster) RestartHost(env *sim.Env, host rpc.HostID) {
	if ep := c.transport.Endpoint(host); ep != nil {
		ep.SetDown(false)
	}
	c.emit(env.Now(), "host-restart", fmt.Sprintf("host %v", host))
}

// HostDown reports whether the host is currently crashed.
func (c *Cluster) HostDown(host rpc.HostID) bool {
	ep := c.transport.Endpoint(host)
	return ep != nil && ep.Down()
}

// destroyProcess fail-stops one process that was executing on the crashed
// host: tables and the ledger are settled instantly (the state was in the
// crashed host's memory — there is no orderly teardown to run), stream
// references the host held are scrubbed, and the process activity is
// interrupted so it unwinds without simulating any further work.
func (c *Cluster) destroyProcess(env *sim.Env, p *Process, crashedHost rpc.HostID) {
	if p.state == StateExited || p.crashed {
		return
	}
	p.crashed = true
	p.killed = true
	cur := p.cur
	for _, kk := range c.kernels {
		delete(kk.procs, p.pid)
	}
	cur.stats.ProcsCrashed++
	// A process dying mid-migration may already have moved stream
	// references to a surviving target host; release those one by one —
	// the crash scrub below only covers the dead host itself.
	if p.migTarget != nil && p.migTarget.host != crashedHost {
		for i := len(p.migMoved) - 1; i >= 0; i-- {
			c.fs.DropRef(p.migMoved[i], p.migTarget.host)
		}
	}
	p.migTarget, p.migMoved = nil, nil
	streams := p.openStreams()
	if p.space != nil {
		for _, seg := range p.space.Segments() {
			if seg.Backing != nil {
				streams = append(streams, seg.Backing)
			}
		}
	}
	for _, st := range streams {
		st.ScrubHost(crashedHost)
	}
	c.noteEnd(p.pid)
	p.state = StateExited
	p.exitStatus = CrashStatus
	if p.home != cur && p.home.host != crashedHost {
		// The home machine survives: record the crash so a waiting parent
		// learns the child's fate.
		p.home.recordExit(p.pid, CrashStatus)
	}
	if req := p.migrateReq; req != nil {
		p.migrateReq = nil
		req.done.Complete(nil, fmt.Errorf("%w: %v crashed", ErrNoSuchProcess, p.pid))
	}
	if w := p.contWaiter; w != nil {
		p.contWaiter = nil
		w.Complete(nil, ErrHostCrashed)
	}
	p.exited.Complete(CrashStatus, nil)
	if p.env != nil {
		p.env.Interrupt(ErrHostCrashed)
	}
	c.emit(env.Now(), "proc-crash", fmt.Sprintf("%v %s on %v", p.pid, p.name, crashedHost))
}

// recoverStreams undoes a partial stream transfer when a migration aborts:
// every stream already moved is moved back, newest first. If the normal RPC
// move-back is impossible (the target host crashed — the usual reason for
// the abort), the source kernel repairs the stream state directly, mirroring
// Sprite's post-crash RPC recovery.
func (k *Kernel) recoverStreams(env *sim.Env, moved []*fs.Stream, target *Kernel) {
	for i := len(moved) - 1; i >= 0; i-- {
		st := moved[i]
		if err := target.fsc.MoveStream(env, st, k.host); err != nil {
			k.cluster.fs.RecoverStream(st, target.host, k.host)
		}
	}
}
