package core

import (
	"fmt"
	"time"

	"sprite/internal/fs"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// This file is the kernel half of the fault plane: named mid-migration
// failure points, fail-stop host crash and restart, and the process ledger
// behind the exactly-once exit invariant. With no failpoint installed and no
// crash injected, nothing here perturbs a run — golden outputs stay
// bit-identical.

// FailpointFunc decides whether a named migration step fails. It runs in
// the migrating process's activity at the end of the step; a non-nil error
// aborts the migration there and drives the real abort-recovery path.
// Points: "mig.init", "mig.vm", "mig.streams", "mig.pcb" (the exec-time
// variant skips "mig.vm").
type FailpointFunc func(env *sim.Env, name string, pid PID) error

// SetFailpoint installs (or with nil removes) the migration failpoint hook.
func (c *Cluster) SetFailpoint(fn FailpointFunc) { c.failpoint = fn }

func (c *Cluster) failAt(env *sim.Env, name string, pid PID) error {
	if c.failpoint == nil {
		return nil
	}
	return c.failpoint(env, name, pid)
}

// FailAt consults the installed failpoint hook at a named point outside the
// migration path. The recovery plane uses it for its own points
// ("recovery.ping", "recovery.restart") so the fault plane can perturb
// detection and failover with the same machinery that aborts migrations.
func (c *Cluster) FailAt(env *sim.Env, name string, pid PID) error {
	return c.failAt(env, name, pid)
}

// --- process ledger ---

func (c *Cluster) noteStart(pid PID) {
	c.ledgerMu.Lock()
	c.ledgerStarted[pid]++
	c.ledgerMu.Unlock()
}

func (c *Cluster) noteEnd(pid PID) {
	c.ledgerMu.Lock()
	c.ledgerEnded[pid]++
	c.ledgerMu.Unlock()
}

// confinedNoCrash guards the crash/restart plane on confined clusters: a
// crash must destroy processes, wake waiters, and scrub file state across
// every host at a single instant — inherently cross-shard work that the
// confined contract excludes (DESIGN.md §14). Suites that inject crashes run
// on ordinary clusters, where every host shares the exclusive shard. The
// panic carries a typed *sim.ConfinedContractError so chaos suites that hit
// the contract by mistake can match errors.Is(err, sim.ErrConfinedContract)
// on the surfaced activity error instead of grepping a bare string.
func (c *Cluster) confinedNoCrash(what string, host rpc.HostID) {
	if c.confined {
		panic(&sim.ConfinedContractError{
			Op:     what,
			Host:   fmt.Sprintf("host %v", host),
			Reason: "crash recovery is cross-shard work",
		})
	}
}

// --- host crash, restart, reboot, and reaping ---

// SetDeferredReap selects the crash-knowledge model. Off (the default, and
// the legacy behaviour every existing test pins down), CrashHost is
// omniscient: surviving kernels react to the crash the instant it happens.
// On, a crash destroys only the state that physically lived on the dead
// host; every surviving kernel keeps its stale view — remote children stay
// in process tables, parents stay blocked in Wait — until a failure
// detector (internal/recovery's monitor, or a test directly) calls
// ReapDeadHost. That is Sprite's real model: crash knowledge spreads by
// detection, not by magic.
func (c *Cluster) SetDeferredReap(on bool) { c.deferReap = on }

// DeferredReap reports whether deferred reaping is enabled.
func (c *Cluster) DeferredReap() bool { return c.deferReap }

// HostEpoch returns the host's current boot epoch (1 until its first
// restart).
func (c *Cluster) HostEpoch(host rpc.HostID) rpc.Epoch {
	if ep := c.transport.Endpoint(host); ep != nil {
		return ep.Epoch()
	}
	return 0
}

// DownSince returns when the host last crashed. ok is false if it never
// has. The recovery plane subtracts this from detection time to report
// detect/restart latency.
func (c *Cluster) DownSince(host rpc.HostID) (time.Duration, bool) {
	at, ok := c.downAt[host]
	return at, ok
}

// ReapedEpoch returns the highest boot epoch of host whose death has been
// reaped cluster-wide (0 if none).
func (c *Cluster) ReapedEpoch(host rpc.HostID) rpc.Epoch { return c.reapedEpochs[host] }

// CrashHost fail-stops a host: its endpoint goes down, every process
// executing on it is destroyed, and the file system runs its recovery
// protocol, scrubbing the host's open state from every server (servers
// detect a dead client as soon as the RPC channel breaks, so their half of
// recovery is never deferred).
//
// In the default (omniscient) mode, every process whose *home* the host is
// also dies wherever it runs — home records are the soft state that makes
// migration transparent; without a home machine the process has no identity
// (Sprite's home-dependency semantics) — and parents blocked in Wait here
// are woken with ErrHostCrashed. With deferred reaping (SetDeferredReap),
// that surviving-kernel half waits for ReapDeadHost.
//
// Processes executing ON the crashed host unwind immediately without
// running any more simulated work. Processes merely HOMED there die through
// the ordinary kill path at their next migration point, closing their
// descriptors for real — their kernels are still alive.
func (c *Cluster) CrashHost(env *sim.Env, host rpc.HostID) {
	c.confinedNoCrash("CrashHost", host)
	epoch := rpc.Epoch(0)
	if ep := c.transport.Endpoint(host); ep != nil {
		epoch = ep.Epoch()
		ep.SetDown(true)
	}
	c.downAt[host] = env.Now()
	if k := c.kernels[host]; k != nil {
		for _, p := range k.Processes() {
			if p.cur != k {
				// A skeleton installed by an in-flight migration whose
				// switch-over has not happened: it dies with the host; the
				// migrating process aborts back to its source.
				delete(k.procs, p.pid)
				continue
			}
			c.destroyProcess(env, p, host, epoch)
		}
		if !c.deferReap {
			for _, rec := range k.homeRecords() {
				p := rec.proc
				if w := rec.waiter; w != nil {
					// A parent blocked in Wait at this (its home) machine:
					// wake it with the crash so it can unwind.
					rec.waiter = nil
					w.Complete(nil, ErrHostCrashed)
				}
				if p.state == StateExited || p.crashed || p.cur == k {
					continue
				}
				p.post(SigKill)
			}
			k.homeRecs = make(map[PID]*homeRecord)
		}
	}
	c.fs.ScrubHostEpoch(host, epoch)
	c.emit(env.Now(), "host-crash", fmt.Sprintf("host %v epoch %d", host, epoch))
}

// RestartHost brings a crashed host back with empty tables under a new boot
// epoch. Its pid sequence keeps counting (Sprite pids encode an
// incarnation-safe sequence), so pids from before the crash are never
// reused.
func (c *Cluster) RestartHost(env *sim.Env, host rpc.HostID) {
	c.confinedNoCrash("RestartHost", host)
	if ep := c.transport.Endpoint(host); ep != nil {
		ep.Restart()
	}
	c.emit(env.Now(), "host-restart", fmt.Sprintf("host %v epoch %d", host, c.HostEpoch(host)))
}

// Reboot power-cycles a host: if it is up it crashes first (same semantics
// as CrashHost, including deferred reaping of the surviving kernels'
// state), its own volatile tables are cleared — waking any remote waiter
// still blocked on one of its home records — and it comes back registered
// under the next boot epoch. Detectors tell the reboot from an unbroken run
// by the epoch carried in RPC replies.
func (c *Cluster) Reboot(env *sim.Env, host rpc.HostID) {
	c.confinedNoCrash("Reboot", host)
	ep := c.transport.Endpoint(host)
	if ep == nil {
		return
	}
	if !ep.Down() {
		c.CrashHost(env, host)
	}
	if k := c.kernels[host]; k != nil {
		// The machine's memory is gone regardless of reap mode: deferred
		// reaping keeps these records *visible* for the detector's sake, but
		// a reboot destroys them before any detector can act.
		for _, rec := range k.homeRecords() {
			if w := rec.waiter; w != nil {
				rec.waiter = nil
				w.Complete(nil, ErrHostCrashed)
			}
		}
		k.homeRecs = make(map[PID]*homeRecord)
	}
	c.RestartHost(env, host)
	c.emit(env.Now(), "host-reboot", fmt.Sprintf("host %v epoch %d", host, c.HostEpoch(host)))
}

// ReapDeadHost applies Sprite's crash-recovery matrix for one dead boot
// incarnation of host, cluster-wide. It is idempotent per epoch and safe to
// run late: everything it touches is guarded by the boot epoch, so state
// created by a post-reboot incarnation is never harmed.
//
//   - The dead incarnation's own home records are discarded; a remote
//     process still blocked in Wait on one is woken with ErrHostCrashed.
//   - Every surviving kernel kills its foreign processes whose home was the
//     dead incarnation (orphans: without a home machine the process has no
//     identity).
//   - Every surviving home settles the records of its remote children that
//     died on the host: the parent's next (or pending) Wait returns the
//     distinguished CrashStatus.
//   - File servers close streams and refcounts owned by the dead epoch (a
//     no-op when the crash itself already scrubbed them).
func (c *Cluster) ReapDeadHost(env *sim.Env, host rpc.HostID, epoch rpc.Epoch) {
	c.confinedNoCrash("ReapDeadHost", host)
	if epoch == 0 || c.reapedEpochs[host] >= epoch {
		return
	}
	c.reapedEpochs[host] = epoch
	if k := c.kernels[host]; k != nil {
		for _, rec := range k.homeRecords() {
			if rec.proc.homeEpoch > epoch {
				continue
			}
			if w := rec.waiter; w != nil {
				rec.waiter = nil
				w.Complete(nil, ErrHostCrashed)
			}
			delete(k.homeRecs, rec.pid)
		}
	}
	for _, k := range c.workstations {
		for _, p := range k.Processes() {
			if p.cur != k || p.state == StateExited || p.killed || p.crashed {
				continue
			}
			if p.home.host == host && p.homeEpoch <= epoch {
				p.post(SigKill)
				c.emit(env.Now(), "reap-orphan", fmt.Sprintf("%v %s on %v (home %v died)", p.pid, p.name, k.host, host))
			}
		}
	}
	for _, k := range c.workstations {
		if k.host == host {
			continue
		}
		for _, rec := range k.homeRecords() {
			p := rec.proc
			if p.crashed && p.state == StateExited && p.cur != nil && p.cur.host == host && p.crashEpoch <= epoch {
				k.recordExit(p.pid, CrashStatus)
			}
		}
	}
	c.fs.ScrubHostEpoch(host, epoch)
	for _, hook := range c.reapHooks {
		hook(env, host, epoch)
	}
	c.emit(env.Now(), "host-reap", fmt.Sprintf("host %v epoch %d", host, epoch))
}

// HostDown reports whether the host is currently crashed.
func (c *Cluster) HostDown(host rpc.HostID) bool {
	ep := c.transport.Endpoint(host)
	return ep != nil && ep.Down()
}

// destroyProcess fail-stops one process that was executing on the crashed
// host: tables and the ledger are settled instantly (the state was in the
// crashed host's memory — there is no orderly teardown to run), stream
// references the host held are scrubbed, and the process activity is
// interrupted so it unwinds without simulating any further work.
func (c *Cluster) destroyProcess(env *sim.Env, p *Process, crashedHost rpc.HostID, epoch rpc.Epoch) {
	if p.state == StateExited || p.crashed {
		return
	}
	p.crashed = true
	p.killed = true
	p.crashEpoch = epoch
	cur := p.cur
	for _, kk := range c.kernels {
		delete(kk.procs, p.pid)
	}
	cur.stats.ProcsCrashed++
	// A process dying mid-migration may already have moved stream
	// references to a surviving target host; release those one by one —
	// the crash scrub below only covers the dead host itself.
	if p.migTarget != nil && p.migTarget.host != crashedHost {
		for i := len(p.migMoved) - 1; i >= 0; i-- {
			c.fs.DropRef(p.migMoved[i], p.migTarget.host)
		}
	}
	p.migTarget, p.migMoved = nil, nil
	streams := p.openStreams()
	if p.space != nil {
		for _, seg := range p.space.Segments() {
			if seg.Backing != nil {
				streams = append(streams, seg.Backing)
			}
		}
	}
	for _, st := range streams {
		st.ScrubHost(crashedHost)
	}
	c.noteEnd(p.pid)
	p.state = StateExited
	p.exitStatus = CrashStatus
	if p.home != cur && p.home.host != crashedHost && !c.deferReap {
		// The home machine survives: record the crash so a waiting parent
		// learns the child's fate. Under deferred reaping the home does not
		// yet know — ReapDeadHost settles the record once a detector fires.
		p.home.recordExit(p.pid, CrashStatus)
	}
	if req := p.migrateReq; req != nil {
		p.migrateReq = nil
		req.done.Complete(nil, fmt.Errorf("%w: %v crashed", ErrNoSuchProcess, p.pid))
	}
	if w := p.contWaiter; w != nil {
		p.contWaiter = nil
		w.Complete(nil, ErrHostCrashed)
	}
	p.exited.Complete(CrashStatus, nil)
	if p.env != nil {
		p.env.Interrupt(ErrHostCrashed)
	}
	c.emit(env.Now(), "proc-crash", fmt.Sprintf("%v %s on %v", p.pid, p.name, crashedHost))
}

// recoverStreams undoes a partial stream transfer when a migration aborts:
// every stream already moved is moved back, newest first. If the normal RPC
// move-back is impossible (the target host crashed — the usual reason for
// the abort), the source kernel repairs the stream state directly, mirroring
// Sprite's post-crash RPC recovery.
func (k *Kernel) recoverStreams(env *sim.Env, moved []*fs.Stream, target *Kernel) {
	for i := len(moved) - 1; i >= 0; i-- {
		st := moved[i]
		if err := target.fsc.MoveStream(env, st, k.host); err != nil {
			k.cluster.fs.RecoverStream(st, target.host, k.host)
		}
	}
}
