// Code generated from the spritelint failpoint audit. Regenerate the raw
// site list with `go run ./cmd/spritelint -audit-failpoints ./...` and fold
// new names in here; spritelint's failpointreg analyzer fails the build if
// this table and the injection sites drift apart (unregistered site or
// dead entry), so the docs, the fuzzer, and the tests can trust it.

package fault

// Failpoint describes one registered named failure point: a place where
// the kernel or the recovery plane consults the installed FailpointFunc and
// a triggered fault drives the real abort/recovery path.
type Failpoint struct {
	// Name is the string passed to the failpoint hook, area-first
	// ("mig.vm", "recovery.ping").
	Name string
	// Package is the import path of the injection site.
	Package string
	// Doc is a one-line description of what failing here exercises.
	Doc string
}

// Failpoints is the authoritative registry. Ordering is stable
// (area-grouped, pipeline order) because the fuzzer derives its fault-kind
// enumeration from it: reordering entries reshuffles which failpoint a
// given seed picks and therefore changes every replay digest.
var Failpoints = []Failpoint{
	{
		Name:    "mig.init",
		Package: "sprite/internal/core",
		Doc:     "after migration negotiation, before any state moves; failing here aborts with nothing to undo",
	},
	{
		Name:    "mig.vm",
		Package: "sprite/internal/core",
		Doc:     "after the address-space transfer (skipped by exec-time migration); failing here exercises VM rollback",
	},
	{
		Name:    "mig.streams",
		Package: "sprite/internal/core",
		Doc:     "during per-stream I/O handoff; failing here exercises move-back of partially transferred streams",
	},
	{
		Name:    "mig.pcb",
		Package: "sprite/internal/core",
		Doc:     "at the process-control-block switch-over, the migration's commit point",
	},
	{
		Name:    "recovery.ping",
		Package: "sprite/internal/recovery",
		Doc:     "the failure detector's liveness probe; failing here fakes a missed ping and perturbs detection latency",
	},
	{
		Name:    "recovery.restart",
		Package: "sprite/internal/recovery",
		Doc:     "the supervisor's checkpointed job restart; failing here exercises restart retry and job-loss accounting",
	},
	{
		Name:    "fleet.drain",
		Package: "sprite/internal/fleet",
		Doc:     "the fleet controller's per-tick drain pass; failing here stalls a drain without losing residents",
	},
	{
		Name:    "fleet.remediate",
		Package: "sprite/internal/fleet",
		Doc:     "the post-drain reboot of a sick host; failing here retries remediation on later ticks",
	},
	{
		Name:    "fleet.readmit",
		Package: "sprite/internal/fleet",
		Doc:     "the readmission probation gate; failing here resets the clean-probe count and keeps the host quarantined",
	},
}

// registered is the name index, built once at init.
var registered = func() map[string]Failpoint {
	m := make(map[string]Failpoint, len(Failpoints))
	for _, fp := range Failpoints {
		m[fp.Name] = fp
	}
	return m
}()

// RegisteredFailpoint reports whether name is in the registry.
func RegisteredFailpoint(name string) bool {
	_, ok := registered[name]
	return ok
}

// FailpointNames returns every registered name in registry order.
func FailpointNames() []string {
	out := make([]string, len(Failpoints))
	for i, fp := range Failpoints {
		out[i] = fp.Name
	}
	return out
}

// MigrationFailpoints returns the registered mid-migration points
// ("mig.*") in registry order — the set the scenario fuzzer draws from.
func MigrationFailpoints() []string {
	var out []string
	for _, fp := range Failpoints {
		if len(fp.Name) > 4 && fp.Name[:4] == "mig." {
			out = append(out, fp.Name)
		}
	}
	return out
}
