package fault

import (
	"flag"
	"os"
	"strconv"
	"testing"
)

// Replay a single fleet scenario:
//
//	go test ./internal/fault -run TestFleetFuzz -fleet-seed=<seed>
var fleetSeed = flag.Int64("fleet-seed", 0, "replay one fleet fuzz scenario by seed")

// fleetSmokeN covers the acceptance bar for the drain-safety family: 50
// seeds of eviction storms, flapping hosts, correlated rack failures, and
// manual cordons, all run against the audit. SPRITE_FLEET_FUZZ=<n>
// lengthens the sweep.
const fleetSmokeN = 50

func runFleetSeed(t *testing.T, seed int64) {
	t.Helper()
	sc := GenFleetScenario(seed)
	if res := RunFleetScenario(sc); res.Failed() {
		min, minRes := ShrinkFleet(sc)
		t.Fatalf("fleet scenario failed (replay: go test ./internal/fault -run TestFleetFuzz -fleet-seed=%d):\n%sshrunk:\n%s",
			seed, sc.Report(res), min.Report(minRes))
	}
}

// TestFleetFuzz runs the eviction-storm scenario family and fails on the
// first drain-safety violation (resident lost, double placement, drained
// host not empty), lost job, hang, or core invariant breach — shrunk to a
// minimal reproduction.
func TestFleetFuzz(t *testing.T) {
	if *fleetSeed != 0 {
		t.Logf("replaying %v", GenFleetScenario(*fleetSeed))
		runFleetSeed(t, *fleetSeed)
		return
	}
	n := fleetSmokeN
	if s := os.Getenv("SPRITE_FLEET_FUZZ"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	kinds := make(map[FleetEventKind]int)
	gossipRuns := 0
	for i := 0; i < n; i++ {
		seed := int64(5000 + i)
		sc := GenFleetScenario(seed)
		for _, e := range sc.Events {
			kinds[e.Kind]++
		}
		if sc.Gossip {
			gossipRuns++
		}
		runFleetSeed(t, seed)
	}
	// The family must actually exercise storm diversity and both selector
	// configurations, not just pass.
	if len(kinds) < 3 {
		t.Fatalf("fleet sweep covered only %d event kinds (%v), want >= 3", len(kinds), kinds)
	}
	if n >= fleetSmokeN && gossipRuns == 0 {
		t.Fatal("fleet sweep never ran with gossip selection")
	}
}

// TestFleetScenarioDeterminism: the same seed yields identical runs — the
// property replay and shrinking depend on.
func TestFleetScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{11, 5003, 5021} {
		sc := GenFleetScenario(seed)
		a, b := RunFleetScenario(sc), RunFleetScenario(sc)
		if a.Digest != b.Digest {
			t.Errorf("seed %d: digests differ:\n  %s\n  %s", seed, a.Digest, b.Digest)
		}
		if len(a.Violations) != len(b.Violations) {
			t.Errorf("seed %d: violation counts differ: %v vs %v", seed, a.Violations, b.Violations)
		}
	}
}

// TestFleetKernelEquivalence: a fleet storm under the conservative
// parallel kernel commits the same event order, digest, and metrics as the
// serial oracle. Fleet clusters are non-confined (the controller reboots
// hosts), so the parallel kernel routes everything through the exclusive
// shard — the digests must still match exactly.
func TestFleetKernelEquivalence(t *testing.T) {
	for _, seed := range []int64{5002, 5007, 5013} {
		sc := GenFleetScenario(seed)
		sres, sobs := RunFleetScenarioKernel(sc, false, 0)
		pres, pobs := RunFleetScenarioKernel(sc, true, 4)
		if sres.Failed() || pres.Failed() {
			t.Fatalf("seed %d: scenario failed under serial=%v parallel=%v:\n%s%s",
				seed, sres.Failed(), pres.Failed(), sc.Report(sres), sc.Report(pres))
		}
		if sobs.Order != pobs.Order {
			t.Errorf("seed %d: order digests differ: serial=%x parallel=%x", seed, sobs.Order, pobs.Order)
		}
		if sobs.Digest != pobs.Digest {
			t.Errorf("seed %d: fleet digests differ:\n  serial:   %s\n  parallel: %s", seed, sobs.Digest, pobs.Digest)
		}
		if sobs.Metrics != pobs.Metrics {
			t.Errorf("seed %d: metrics snapshots differ between kernels", seed)
		}
	}
}
