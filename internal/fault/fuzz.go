package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/hostsel"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/trace"
	"sprite/internal/workload"
)

// This file is the seed-driven scenario fuzzer: it composes a random process
// workload (migrations, evictions, files, pipes, forks, remote execs) with a
// random fault schedule (crashes, drops, delays, partitions, migration
// aborts), runs the cluster to quiescence, and checks every cluster-wide
// invariant. A scenario is a pure function of its seed, so any failure
// replays bit for bit from the seed alone.

// Kind enumerates the fault classes the fuzzer schedules.
type Kind int

// Fault classes.
const (
	KindCrash     Kind = iota // crash a workstation; maybe restart later
	KindDrop                  // probabilistic message loss window
	KindDelay                 // probabilistic message latency window
	KindPartition             // isolate one workstation for a window
	KindMigFail               // arm a migration failpoint for a window
	KindReboot                // instantaneous crash-restart: state lost, epoch bumped
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindPartition:
		return "partition"
	case KindMigFail:
		return "mig-fail"
	case KindReboot:
		return "reboot"
	default:
		return "?"
	}
}

// Event is one scheduled fault. Host is a workstation index (0-based);
// servers are never faulted — Sprite's availability argument assumes file
// servers recover on their own terms, and every invariant we check would be
// vacuous with the shared FS gone.
type Event struct {
	Kind  Kind
	Host  int
	At    time.Duration
	Dur   time.Duration // crash: 0 = never restarts
	Prob  float64
	Point string // migration failpoint name for KindMigFail
}

// Scenario is a complete, self-describing fuzz case.
type Scenario struct {
	Seed         int64
	Workstations int
	Procs        int
	// Gossip runs the gossip host selector (daemons plus a claim/release
	// requester, audited by the claim ledger) alongside the process
	// workload, so selector soft state is fuzzed under the same faults.
	Gossip bool
	Events []Event
}

// String renders the scenario compactly for failure reports.
func (sc Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d ws=%d procs=%d gossip=%t", sc.Seed, sc.Workstations, sc.Procs, sc.Gossip)
	for _, e := range sc.Events {
		fmt.Fprintf(&b, " [%v w%d at=%v dur=%v p=%.2f %s]", e.Kind, e.Host, e.At, e.Dur, e.Prob, e.Point)
	}
	return b.String()
}

// migPoints is the fault-kind pool for KindMigFail, read from the
// failpoint registry (failpoints.go) so the fuzzer can never arm a point
// the kernel does not consult. Registry order is replay-significant: the
// scenario generator indexes into this slice with a seeded draw.
var migPoints = MigrationFailpoints()

// GenScenario derives a scenario from a seed. Same seed, same scenario.
func GenScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:         seed,
		Workstations: 3 + rng.Intn(3),
		Procs:        4 + rng.Intn(6),
		Gossip:       rng.Intn(2) == 0,
	}
	n := 1 + rng.Intn(4)
	crashed := make(map[int]bool)
	for i := 0; i < n; i++ {
		e := Event{
			Kind: Kind(rng.Intn(6)),
			Host: rng.Intn(sc.Workstations),
			At:   time.Duration(50+rng.Intn(1500)) * time.Millisecond,
			Dur:  time.Duration(200+rng.Intn(1000)) * time.Millisecond,
			Prob: 0.15 + 0.45*rng.Float64(),
		}
		switch e.Kind {
		case KindCrash:
			// One crash per host keeps the up/down timeline unambiguous.
			if crashed[e.Host] {
				continue
			}
			crashed[e.Host] = true
			if rng.Intn(4) == 0 {
				e.Dur = 0 // never comes back
			}
		case KindMigFail:
			e.Point = migPoints[rng.Intn(len(migPoints))]
		case KindReboot:
			// Reboots share the one-fault-per-host budget with crashes so the
			// epoch timeline of any host stays a single, unambiguous step.
			if crashed[e.Host] {
				continue
			}
			crashed[e.Host] = true
			e.Dur = 0 // instantaneous: the host is back before the next event
		}
		sc.Events = append(sc.Events, e)
	}
	return sc
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario   Scenario
	Digest     string        // replay fingerprint: equal digests = identical runs
	Violations []string      // empty = clean run
	Tail       []trace.Event // last cluster events before the run settled; set on failure
}

// Failed reports whether the run violated any invariant.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Report renders the failure for a test log.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %v\n", r.Scenario)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	for _, e := range r.Tail {
		fmt.Fprintf(&b, "  trace: %s\n", e)
	}
	return b.String()
}

// fuzzMaxSim bounds one scenario's virtual time; a run that still has live
// activities at this horizon is reported as a hang.
const fuzzMaxSim = 10 * time.Minute

// fuzzParams widens the RPC retry budget so that every bounded fault window
// (max ~2.5 s) is survivable: the retransmission span must exceed the window,
// or lost messages would turn into spurious state divergence instead of
// exercising recovery.
func fuzzParams() core.Params {
	p := core.DefaultParams()
	p.RPC.MaxRetries = 12
	return p
}

// downDuring reports whether workstation index w is down at time t under the
// scenario's crash schedule.
func (sc Scenario) downDuring(w int, t time.Duration) bool {
	for _, e := range sc.Events {
		if e.Kind != KindCrash || e.Host != w {
			continue
		}
		if t >= e.At && (e.Dur == 0 || t < e.At+e.Dur) {
			return true
		}
	}
	return false
}

// procPlan is one workload process, fully decided before the run starts.
type procPlan struct {
	kind    int // 0 hopper, 1 filer, 2 piper, 3 remote-exec
	startAt time.Duration
	home    int   // workstation index
	targets []int // migration / remote-exec destinations (may be down: abort path)
	pages   int
	shared  bool // filer uses the contended path
}

// kernelCfg selects the event kernel one scenario run executes under and
// what extra observables the run captures. The zero value is the serial
// oracle with ring-buffer tracing — exactly the historical RunScenario.
type kernelCfg struct {
	// parallel/workers configure the conservative parallel kernel.
	parallel bool
	workers  int
	// bgHosts rides confined background-load daemons (internal/workload)
	// along with the process workload, so cross-kernel comparisons cover
	// worker-committed events, sharded metrics, and mailbox traffic.
	bgHosts int
	// capture, when set, receives the run's full observable surface.
	capture *KernelObservation
}

// KernelObservation is everything externally visible about one scenario
// run: if any field differs between the serial oracle and the parallel
// kernel, determinism is broken. Trace is the byte-exact event stream, not
// a digest, so divergences point at the first differing event.
type KernelObservation struct {
	RunErr     string
	Order      uint64 // sim.OrderDigest: FNV over the committed (at, seq) stream
	Digest     string // the fuzzer's coarse replay fingerprint
	Trace      string
	Metrics    string
	Violations []string
	BgReports  int
}

// RunScenario executes one scenario and checks every invariant. It is a pure
// function of the scenario.
func RunScenario(sc Scenario) *Result { return runScenario(sc, kernelCfg{}) }

func runScenario(sc Scenario, kc kernelCfg) *Result {
	res := &Result{Scenario: sc}
	fail := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	params := fuzzParams()
	if kc.parallel {
		params.Sim.Parallel = true
		params.Sim.Workers = kc.workers
	}
	c, err := core.NewCluster(core.Options{
		Workstations: sc.Workstations,
		FileServers:  1,
		Params:       &params,
		Seed:         sc.Seed,
	})
	if err != nil {
		fail("cluster: %v", err)
		return res
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		fail("seed: %v", err)
		return res
	}

	// Tracing costs no simulated time, so recording unconditionally keeps
	// the run identical to an untraced one while giving failure reports the
	// last events before things went wrong.
	lg := trace.New(512)
	if kc.capture != nil {
		// Equivalence runs additionally keep the complete event stream:
		// byte-exact traces are the strongest cross-kernel comparison.
		var full strings.Builder
		ring := lg.Func()
		c.SetTrace(func(at time.Duration, kind, detail string) {
			fmt.Fprintf(&full, "%v %s %s\n", at, kind, detail)
			ring(at, kind, detail)
		})
		defer func() { kc.capture.Trace = full.String() }()
	} else {
		c.SetTrace(lg.Func())
	}

	// Confined background load, when requested: one daemon per bgHost on
	// its own shard, bounded so the run still quiesces.
	var bg *workload.BgLoad
	if kc.bgHosts > 0 {
		bg = workload.StartBgLoad(c.Sim(), c.Metrics(), workload.BgLoadConfig{
			Hosts:       kc.bgHosts,
			Tick:        5 * time.Millisecond,
			WorkPerTick: 300,
			ReportEvery: 4,
			Ticks:       120,
		})
	}

	// The plane's private stream is derived from the scenario seed so the
	// whole run replays from one number.
	plane := NewPlane(c, sc.Seed^0x5eedfa17)
	for _, e := range sc.Events {
		host := c.Workstation(e.Host).Host()
		switch e.Kind {
		case KindCrash:
			plane.ScheduleCrash(host, e.At, e.Dur)
		case KindDrop:
			plane.DropMessages(e.At, e.At+e.Dur, e.Prob, host)
		case KindDelay:
			plane.DelayMessages(e.At, e.At+e.Dur, 2*time.Millisecond, e.Prob, host)
		case KindPartition:
			plane.Partition(e.At, e.At+e.Dur, host)
		case KindMigFail:
			plane.FailMigration(e.Point, core.PID{}, e.At, e.At+e.Dur, e.Prob, -1)
		case KindReboot:
			plane.ScheduleReboot(host, e.At)
		}
	}

	// Optionally run the gossip host selector under the same fault
	// schedule: per-host gossip daemons, one claim/release requester, and
	// the claim ledger's audit wired into CheckInvariants. Selector soft
	// state (views, claims, hints) then gets fuzzed by exactly the crash /
	// drop / partition / reboot events the kernel sees.
	var gossip *hostsel.Probabilistic
	if sc.Gossip {
		gp := hostsel.DefaultProbabilisticParams()
		gossip = hostsel.NewProbabilistic(c, gp)
		ledger := hostsel.NewClaimLedger(gossip, c, gp.ClaimLease)
		ledger.Register(c)
		c.Boot("fuzz-hostsel", func(env *sim.Env) error {
			defer gossip.Stop()
			gossip.StartDaemons(env)
			client := c.Workstation(0).Host()
			// Phase one runs inside the fault windows (mostly denials: no
			// host is idle-aged yet, and the faults are live); phase two
			// runs after the idle threshold so grants and releases happen
			// on post-fault state — rebooted hosts, healed partitions.
			for _, startAt := range []time.Duration{500 * time.Millisecond, 70 * time.Second} {
				if wait := startAt - env.Now(); wait > 0 {
					if err := env.Sleep(wait); err != nil {
						return err
					}
				}
				for i := 0; i < 6; i++ {
					got, err := ledger.RequestHosts(env, client, 1)
					if err != nil {
						return err
					}
					if err := env.Sleep(200 * time.Millisecond); err != nil {
						return err
					}
					if len(got) > 0 {
						if err := ledger.Release(env, client, got); err != nil {
							return err
						}
					}
					if err := env.Sleep(100 * time.Millisecond); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}

	// Pre-decide the whole workload from a second derived stream: the sim's
	// own rng is left to the kernel.
	wrng := rand.New(rand.NewSource(sc.Seed ^ 0x740ad))
	plans := make([]procPlan, sc.Procs)
	for i := range plans {
		pl := procPlan{
			kind:    wrng.Intn(4),
			startAt: time.Duration(wrng.Intn(1800)) * time.Millisecond,
			home:    wrng.Intn(sc.Workstations),
			pages:   2 + wrng.Intn(8),
			shared:  wrng.Intn(3) == 0,
		}
		for sc.downDuring(pl.home, pl.startAt) {
			pl.home = (pl.home + 1) % sc.Workstations
		}
		nt := 1 + wrng.Intn(2)
		for j := 0; j < nt; j++ {
			pl.targets = append(pl.targets, wrng.Intn(sc.Workstations))
		}
		plans[i] = pl
	}

	c.Boot("fuzz-driver", func(env *sim.Env) error {
		var procs []*core.Process
		for i, pl := range plans {
			if wait := pl.startAt - env.Now(); wait > 0 {
				if err := env.Sleep(wait); err != nil {
					return err
				}
			}
			if sc.downDuring(pl.home, env.Now()) {
				continue // start-time drift landed in a down window; skip
			}
			k := c.Workstation(pl.home)
			p, err := k.StartProcess(env, fmt.Sprintf("fuzz%d", i), fuzzProgram(c, i, pl), core.ProcConfig{
				Binary: "/bin/prog", CodePages: 2, HeapPages: pl.pages, StackPages: 1,
			})
			if err != nil {
				return fmt.Errorf("start fuzz%d: %w", i, err)
			}
			procs = append(procs, p)
		}
		for _, p := range procs {
			if _, err := p.Exited().Wait(env); err != nil {
				return fmt.Errorf("join %v: %w", p.PID(), err)
			}
		}
		return nil
	})

	rerr := c.Run(fuzzMaxSim)
	if rerr != nil {
		fail("run: %v", rerr)
	}
	if n := c.Sim().LiveActivities(); n > 0 {
		fail("hang: %d activities still live at the %v horizon", n, fuzzMaxSim)
	}
	res.Violations = append(res.Violations, c.CheckInvariants(true)...)

	var started, exited, crashed uint64
	for _, k := range c.Workstations() {
		st := k.Stats()
		started += st.ProcsStarted
		exited += st.ProcsExited
		crashed += st.ProcsCrashed
	}
	res.Digest = fmt.Sprintf("t=%v calls=%d retries=%d timeouts=%d injected=%d started=%d exited=%d crashed=%d",
		c.Sim().Now(), c.Transport().TotalCalls(), c.Transport().Retries(), c.Transport().Timeouts(),
		plane.Injected(), started, exited, crashed)
	if gossip != nil {
		st := gossip.Stats()
		res.Digest += fmt.Sprintf(" hostsel: req=%d granted=%d conflicts=%d msgs=%d",
			st.Requests, st.Granted, st.Conflicts, st.Messages)
	}
	if res.Failed() {
		res.Tail = lg.Tail(20)
	}
	if kc.capture != nil {
		if rerr != nil {
			kc.capture.RunErr = rerr.Error()
		}
		kc.capture.Order = c.Sim().OrderDigest()
		kc.capture.Digest = res.Digest
		kc.capture.Metrics = c.MetricsSnapshot().Text()
		kc.capture.Violations = append([]string(nil), res.Violations...)
		if bg != nil {
			kc.capture.BgReports = bg.Received()
		}
	}
	return res
}

// fuzzProgram builds one workload process. Fault-induced errors (crashes,
// kills, aborted migrations, severed pipes) are expected outcomes, so every
// step tolerates failure and falls through to a normal exit — the invariant
// checker, not the program, decides whether the kernel misbehaved.
func fuzzProgram(c *core.Cluster, i int, pl procPlan) core.Program {
	target := func(j int) rpc.HostID {
		return c.Workstation(pl.targets[j%len(pl.targets)]).Host()
	}
	switch pl.kind {
	case 0: // hopper: compute and hop between hosts
		return func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, pl.pages, true); err != nil {
				return nil
			}
			for j := 0; j < len(pl.targets); j++ {
				if err := ctx.Compute(40 * time.Millisecond); err != nil {
					return nil
				}
				_ = ctx.Migrate(target(j)) // may abort; life goes on here
			}
			if err := ctx.Compute(40 * time.Millisecond); err != nil {
				return nil
			}
			return nil
		}
	case 1: // filer: file I/O across a migration, sometimes contended
		return func(ctx *core.Ctx) error {
			path := fmt.Sprintf("/data/f%d", i)
			if pl.shared {
				path = "/data/shared"
			}
			fd, err := ctx.Open(path, fs.ReadWriteMode, fs.OpenOptions{Create: true})
			if err != nil {
				return nil
			}
			if _, err := ctx.Write(fd, make([]byte, 2048)); err != nil {
				return nil
			}
			_ = ctx.Migrate(target(0))
			if _, err := ctx.Write(fd, make([]byte, 1024)); err != nil {
				return nil
			}
			if err := ctx.Seek(fd, 0); err != nil {
				return nil
			}
			if _, err := ctx.Read(fd, 1024); err != nil {
				return nil
			}
			_ = ctx.Close(fd)
			return nil
		}
	case 2: // piper: parent writes, forked child reads across a migration
		return func(ctx *core.Ctx) error {
			rfd, wfd, err := ctx.Pipe()
			if err != nil {
				return nil
			}
			_, err = ctx.Fork(fmt.Sprintf("fuzz%d-rd", i), func(cc *core.Ctx) error {
				_ = cc.Close(wfd)
				_ = cc.Migrate(target(0))
				for {
					data, err := cc.Read(rfd, 512)
					if err != nil || len(data) == 0 {
						break // EOF, severed pipe, or kill
					}
				}
				_ = cc.Close(rfd)
				return nil
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 1, HeapPages: 1, StackPages: 1})
			if err != nil {
				return nil
			}
			_ = ctx.Close(rfd)
			for j := 0; j < 4; j++ {
				if _, err := ctx.Write(wfd, make([]byte, 256)); err != nil {
					break
				}
				if err := ctx.Compute(10 * time.Millisecond); err != nil {
					break
				}
			}
			_ = ctx.Close(wfd)
			_, _, _ = ctx.Wait()
			return nil
		}
	default: // remote exec: the pmake path, exec-time migration
		return func(ctx *core.Ctx) error {
			_, err := ctx.ForkRemoteExec(fmt.Sprintf("fuzz%d-rx", i), func(cc *core.Ctx) error {
				if err := cc.TouchHeap(0, 2, true); err != nil {
					return nil
				}
				if err := cc.Compute(30 * time.Millisecond); err != nil {
					return nil
				}
				return nil
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 1, HeapPages: 2, StackPages: 1}, target(0))
			if err != nil {
				return nil
			}
			_, _, _ = ctx.Wait()
			return nil
		}
	}
}

// Shrink greedily minimizes a failing scenario: drop fault events one at a
// time, then halve the process count, keeping every step that still fails.
// Because runs are deterministic, "still fails" is exact, not statistical.
func Shrink(sc Scenario) (Scenario, *Result) {
	res := RunScenario(sc)
	if !res.Failed() {
		return sc, res
	}
	cur := sc
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Events); i++ {
			cand := cur
			cand.Events = make([]Event, 0, len(cur.Events)-1)
			cand.Events = append(cand.Events, cur.Events[:i]...)
			cand.Events = append(cand.Events, cur.Events[i+1:]...)
			if r := RunScenario(cand); r.Failed() {
				cur, res = cand, r
				changed = true
				break
			}
		}
		if !changed && cur.Gossip {
			cand := cur
			cand.Gossip = false
			if r := RunScenario(cand); r.Failed() {
				cur, res = cand, r
				changed = true
			}
		}
		if !changed && cur.Procs > 1 {
			cand := cur
			cand.Procs = cur.Procs / 2
			if r := RunScenario(cand); r.Failed() {
				cur, res = cand, r
				changed = true
			}
		}
	}
	return cur, res
}
