package fault

import (
	"errors"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/sim"
)

// bulkCluster builds a cluster with the batched data plane explicitly
// enabled (the default, asserted here so the test keeps meaning if the
// default ever changes).
func bulkCluster(t *testing.T, workstations int, seed int64) *core.Cluster {
	t.Helper()
	params := core.DefaultParams()
	params.Batch.Enabled = true
	c, err := core.NewCluster(core.Options{Workstations: workstations, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	return c
}

var bulkProc = core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 64, StackPages: 2}

// TestBulkMigrationRetransmitsUnderDrops: with the fault plane dropping a
// fifth of all traffic, a batched migration loses fragments mid-batch, pays
// retransmission timeouts, and still completes with every invariant intact.
func TestBulkMigrationRetransmitsUnderDrops(t *testing.T) {
	c := bulkCluster(t, 2, 7)
	plane := NewPlane(c, 99)
	plane.DropMessages(0, time.Hour, 0.2)
	src, dst := c.Workstation(0), c.Workstation(1)
	var merr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "mover", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, 64, true); err != nil {
				return err
			}
			merr = ctx.Migrate(dst.Host())
			return ctx.TouchHeap(0, 64, false)
		}, bulkProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if merr != nil {
		t.Fatalf("migration failed under 20%% loss: %v", merr)
	}
	recs := c.MigrationRecords()
	if len(recs) != 1 {
		t.Fatalf("migrations = %d, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Batched || rec.BatchFragments == 0 {
		t.Fatalf("migration did not use the bulk path: %+v", rec)
	}
	if rec.BatchRetransmits == 0 {
		t.Fatalf("no fragment retransmits under 20%% loss (seed-sensitive; re-pin the seed): %+v", rec)
	}
	if plane.Injected() == 0 {
		t.Fatal("fault plane injected nothing")
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Fatalf("invariants violated: %v", v)
	}
}

// TestBulkAbortMidBatchRollsBack: an injected abort right after the batched
// VM transfer drives the abort-recovery path — the process resumes on the
// source with its streams restored, the metrics plane rolls back coherently,
// and a retry then succeeds over the same bulk path.
func TestBulkAbortMidBatchRollsBack(t *testing.T) {
	c := bulkCluster(t, 2, 11)
	plane := NewPlane(c, 5)
	plane.FailMigration("mig.vm", core.PID{}, 0, time.Hour, 1, 1)
	src, dst := c.Workstation(0), c.Workstation(1)
	var firstErr, retryErr error
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "unlucky", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, 64, true); err != nil {
				return err
			}
			firstErr = ctx.Migrate(dst.Host())
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			retryErr = ctx.Migrate(dst.Host())
			return ctx.TouchHeap(0, 64, false)
		}, bulkProc)
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(firstErr, ErrInjected) {
		t.Fatalf("first migration err = %v, want injected failure", firstErr)
	}
	if retryErr != nil {
		t.Fatalf("retry after abort failed: %v", retryErr)
	}
	recs := c.MigrationRecords()
	if len(recs) != 1 || !recs[0].Batched {
		t.Fatalf("completed migrations = %+v, want one batched record", recs)
	}
	snap := c.MetricsSnapshot()
	if got := snap.Counters["mig.aborted"]; got != 1 {
		t.Fatalf("mig.aborted = %d, want 1", got)
	}
	if got := snap.Counters["mig.aborted.vm.sprite-flush"]; got != 1 {
		t.Fatalf("mig.aborted.vm.sprite-flush = %d, want 1", got)
	}
	if got := snap.Counters["mig.completed"]; got != 1 {
		t.Fatalf("mig.completed = %d, want 1", got)
	}
	if g := snap.Gauges["mig.inflight"]; g.Value != 0 {
		t.Fatalf("mig.inflight = %d, want 0", g.Value)
	}
	if v := c.CheckInvariants(true); len(v) != 0 {
		t.Fatalf("invariants violated after abort: %v", v)
	}
}
