package fault

import (
	"fmt"
	"strings"
)

// This file is the cluster-level serial-vs-parallel equivalence harness:
// the same fuzz scenario — processes, migrations, crashes, partitions,
// gossip, plus confined background-load daemons — runs under the serial
// oracle and under the conservative parallel kernel at several worker
// counts, and every observable byte (trace stream, metrics snapshot, order
// digest, invariant reports) must be identical. The parallel kernel's
// correctness claim is exactly this: worker count is not an input.

// RunScenarioKernel runs sc under one kernel configuration (workers == 0
// selects the serial oracle) with bgHosts confined load daemons, and
// returns the full observation.
func RunScenarioKernel(sc Scenario, workers, bgHosts int) KernelObservation {
	var obs KernelObservation
	kc := kernelCfg{bgHosts: bgHosts, capture: &obs}
	if workers > 0 {
		kc.parallel = true
		kc.workers = workers
	}
	runScenario(sc, kc)
	return obs
}

// diffLine locates the first line where two multi-line strings diverge,
// for actionable failure reports.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// EquivCheck runs sc under the serial oracle and then under the parallel
// kernel at each of workerCounts, returning one message per divergence
// (empty slice = fully equivalent). bgHosts > 0 adds confined daemons so
// the comparison exercises worker-committed events and sharded metrics.
func EquivCheck(sc Scenario, bgHosts int, workerCounts []int) []string {
	want := RunScenarioKernel(sc, 0, bgHosts)
	var diffs []string
	for _, w := range workerCounts {
		got := RunScenarioKernel(sc, w, bgHosts)
		tag := fmt.Sprintf("workers=%d", w)
		if got.Order != want.Order {
			diffs = append(diffs, fmt.Sprintf("%s: order digest %#x, serial %#x", tag, got.Order, want.Order))
		}
		if got.Trace != want.Trace {
			diffs = append(diffs, fmt.Sprintf("%s: trace diverged at %s", tag, diffLine(got.Trace, want.Trace)))
		}
		if got.Metrics != want.Metrics {
			diffs = append(diffs, fmt.Sprintf("%s: metrics diverged at %s", tag, diffLine(got.Metrics, want.Metrics)))
		}
		if got.Digest != want.Digest {
			diffs = append(diffs, fmt.Sprintf("%s: digest %q, serial %q", tag, got.Digest, want.Digest))
		}
		if got.RunErr != want.RunErr {
			diffs = append(diffs, fmt.Sprintf("%s: run error %q, serial %q", tag, got.RunErr, want.RunErr))
		}
		if got.BgReports != want.BgReports {
			diffs = append(diffs, fmt.Sprintf("%s: %d bg reports, serial %d", tag, got.BgReports, want.BgReports))
		}
		if gv, wv := strings.Join(got.Violations, "; "), strings.Join(want.Violations, "; "); gv != wv {
			diffs = append(diffs, fmt.Sprintf("%s: invariants %q, serial %q", tag, gv, wv))
		}
	}
	return diffs
}

// ShrinkEquiv greedily minimizes a scenario whose parallel runs diverge
// from serial, reusing the fuzzer's shrinking moves with "still diverges"
// as the predicate. Determinism makes the predicate exact.
func ShrinkEquiv(sc Scenario, bgHosts int, workerCounts []int) (Scenario, []string) {
	diffs := EquivCheck(sc, bgHosts, workerCounts)
	if len(diffs) == 0 {
		return sc, nil
	}
	cur := sc
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Events); i++ {
			cand := cur
			cand.Events = make([]Event, 0, len(cur.Events)-1)
			cand.Events = append(cand.Events, cur.Events[:i]...)
			cand.Events = append(cand.Events, cur.Events[i+1:]...)
			if d := EquivCheck(cand, bgHosts, workerCounts); len(d) > 0 {
				cur, diffs = cand, d
				changed = true
				break
			}
		}
		if !changed && cur.Gossip {
			cand := cur
			cand.Gossip = false
			if d := EquivCheck(cand, bgHosts, workerCounts); len(d) > 0 {
				cur, diffs = cand, d
				changed = true
			}
		}
		if !changed && cur.Procs > 1 {
			cand := cur
			cand.Procs = cur.Procs / 2
			if d := EquivCheck(cand, bgHosts, workerCounts); len(d) > 0 {
				cur, diffs = cand, d
				changed = true
			}
		}
	}
	return cur, diffs
}
