package fault

import (
	"flag"
	"os"
	"strconv"
	"testing"
)

// Replay a single scenario:
//
//	go test ./internal/fault -run TestClusterFuzz -seed=<seed>
//
// The seed printed in a failure report reproduces the failing run bit for
// bit, including its shrunk form.
var fuzzSeed = flag.Int64("seed", 0, "replay one fuzz scenario by seed")

// fuzzSmokeN is the default scenario budget for the plain `go test` smoke
// run; set SPRITE_FUZZ=<n> for a longer sweep.
const fuzzSmokeN = 30

// TestClusterFuzz runs randomized fault scenarios and fails on the first
// invariant violation, after shrinking it to a minimal reproduction.
func TestClusterFuzz(t *testing.T) {
	if *fuzzSeed != 0 {
		sc := GenScenario(*fuzzSeed)
		t.Logf("replaying %v", sc)
		if res := RunScenario(sc); res.Failed() {
			min, minRes := Shrink(sc)
			t.Fatalf("seed %d failed:\n%sshrunk to %v:\n%s", *fuzzSeed, res.Report(), min, minRes.Report())
		}
		return
	}
	n := fuzzSmokeN
	if s := os.Getenv("SPRITE_FUZZ"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	kinds := make(map[Kind]int)
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		sc := GenScenario(seed)
		for _, e := range sc.Events {
			kinds[e.Kind]++
		}
		if res := RunScenario(sc); res.Failed() {
			min, minRes := Shrink(sc)
			t.Fatalf("scenario failed (replay: go test ./internal/fault -run TestClusterFuzz -seed=%d):\n%sshrunk to %v:\n%s",
				seed, res.Report(), min, minRes.Report())
		}
	}
	// The smoke run must actually exercise fault diversity, not just pass.
	if len(kinds) < 3 {
		t.Fatalf("smoke run covered only %d fault kinds (%v), want >= 3", len(kinds), kinds)
	}
}

// TestScenarioDeterminism: the same seed yields byte-identical runs — the
// property the replay workflow depends on.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 42, 1009} {
		sc := GenScenario(seed)
		a, b := RunScenario(sc), RunScenario(sc)
		if a.Digest != b.Digest {
			t.Errorf("seed %d: digests differ:\n  %s\n  %s", seed, a.Digest, b.Digest)
		}
		if len(a.Violations) != len(b.Violations) {
			t.Errorf("seed %d: violation counts differ: %v vs %v", seed, a.Violations, b.Violations)
		}
	}
}
