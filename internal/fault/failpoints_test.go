package fault

import "testing"

// The fuzzer draws a fault kind by indexing a seeded random value into
// MigrationFailpoints(), so the registry's mig.* order is part of the
// replay contract: reordering it changes every recorded scenario digest.
// This pin makes such a change an explicit, test-visible decision.
func TestMigrationFailpointOrderPinned(t *testing.T) {
	want := []string{"mig.init", "mig.vm", "mig.streams", "mig.pcb"}
	got := MigrationFailpoints()
	if len(got) != len(want) {
		t.Fatalf("MigrationFailpoints() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MigrationFailpoints()[%d] = %q, want %q (order is replay-significant)", i, got[i], want[i])
		}
	}
}

func TestRegisteredFailpoint(t *testing.T) {
	for _, fp := range Failpoints {
		if !RegisteredFailpoint(fp.Name) {
			t.Errorf("RegisteredFailpoint(%q) = false for a registry entry", fp.Name)
		}
		if fp.Package == "" || fp.Doc == "" {
			t.Errorf("registry entry %q missing package or doc", fp.Name)
		}
	}
	if RegisteredFailpoint("mig.bogus") {
		t.Error(`RegisteredFailpoint("mig.bogus") = true, want false`)
	}
}

func TestFailpointNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, name := range FailpointNames() {
		if seen[name] {
			t.Errorf("duplicate failpoint name %q", name)
		}
		seen[name] = true
	}
}
