// Package fault is the deterministic fault-injection plane for the simulated
// Sprite cluster: host crashes and restarts, message drops, delays and
// duplication, network partitions, and named mid-migration failure points.
//
// All injection decisions are pure functions of the installed schedule and a
// private random stream seeded at construction, so a faulty run is replayable
// bit for bit from its seed. With no Plane installed, every hook in the
// simulator is inert and default runs stay golden.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// ErrInjected is the error delivered by a triggered migration failpoint.
var ErrInjected = errors.New("fault: injected migration failure")

// msgRule is one time window of message perturbation, optionally restricted
// to traffic touching a host set.
type msgRule struct {
	from, until time.Duration
	prob        float64
	delay       time.Duration // 0 for drop rules
	dup         bool
	hosts       map[rpc.HostID]bool // nil matches all traffic
}

func (r *msgRule) matches(now time.Duration, from, to rpc.HostID) bool {
	if now < r.from || now >= r.until {
		return false
	}
	if r.hosts == nil {
		return true
	}
	return r.hosts[from] || r.hosts[to]
}

// partition is one time window during which a host group is cut off from the
// rest of the network (messages between sides are dropped deterministically).
type partition struct {
	from, until time.Duration
	group       map[rpc.HostID]bool
}

// migFail arms a named migration failpoint within a time window.
type migFail struct {
	point       string
	pid         core.PID // zero value matches any process
	from, until time.Duration
	prob        float64
	remaining   int // -1 = unlimited within the window
}

// Plane wires fault injection into one cluster. Construct with NewPlane;
// schedule faults before or during the run; every decision point draws from
// the Plane's private random stream, never the simulation's, so fault
// randomness does not perturb workload randomness.
type Plane struct {
	cluster *core.Cluster
	rng     *rand.Rand

	drops    []*msgRule
	delays   []*msgRule
	parts    []*partition
	migFails []*migFail

	// Injected counts verdicts that perturbed a message.
	injected uint64
}

var _ rpc.Injector = (*Plane)(nil)

// NewPlane installs a fault plane on the cluster: the RPC injector and the
// migration failpoint hook. The seed drives only injection decisions.
func NewPlane(c *core.Cluster, seed int64) *Plane {
	p := &Plane{cluster: c, rng: rand.New(rand.NewSource(seed))}
	c.Transport().SetInjector(p)
	c.SetFailpoint(p.failpoint)
	return p
}

// Detach removes the plane's hooks, returning the cluster to fault-free
// operation.
func (p *Plane) Detach() {
	p.cluster.Transport().SetInjector(nil)
	p.cluster.SetFailpoint(nil)
}

// Injected returns how many message verdicts perturbed traffic so far.
func (p *Plane) Injected() uint64 { return p.injected }

// --- schedule construction ---

func hostSet(hosts []rpc.HostID) map[rpc.HostID]bool {
	if len(hosts) == 0 {
		return nil
	}
	m := make(map[rpc.HostID]bool, len(hosts))
	for _, h := range hosts {
		m[h] = true
	}
	return m
}

// DropMessages drops each message touching one of hosts (all traffic if none
// given) with probability prob during [from, until). A dropped request makes
// the server miss the call; a dropped reply makes the server execute it and
// the client retry into duplicate suppression — both sides of Sprite RPC's
// at-most-once machinery.
func (p *Plane) DropMessages(from, until time.Duration, prob float64, hosts ...rpc.HostID) {
	p.drops = append(p.drops, &msgRule{from: from, until: until, prob: prob, hosts: hostSet(hosts)})
}

// DelayMessages adds d of one-way latency with probability prob during
// [from, until), modeling congestion rather than loss.
func (p *Plane) DelayMessages(from, until time.Duration, d time.Duration, prob float64, hosts ...rpc.HostID) {
	p.delays = append(p.delays, &msgRule{from: from, until: until, prob: prob, delay: d, hosts: hostSet(hosts)})
}

// DuplicateMessages re-sends each matching request with probability prob
// during [from, until); the server's transaction check discards the copy.
func (p *Plane) DuplicateMessages(from, until time.Duration, prob float64, hosts ...rpc.HostID) {
	p.drops = append(p.drops, &msgRule{from: from, until: until, prob: prob, dup: true, hosts: hostSet(hosts)})
}

// Partition cuts group off from every other host during [from, until):
// messages crossing the cut are dropped deterministically. Hosts inside the
// group still talk to each other.
func (p *Plane) Partition(from, until time.Duration, group ...rpc.HostID) {
	p.parts = append(p.parts, &partition{from: from, until: until, group: hostSet(group)})
}

// FailMigration arms the named migration failpoint ("mig.init", "mig.vm",
// "mig.streams", "mig.pcb") for a process (zero PID matches any) during
// [from, until), firing with probability prob at most `times` times
// (times < 0 = unlimited). The aborted migration exercises the kernel's
// abort-recovery path: the process must resume intact on the source.
func (p *Plane) FailMigration(point string, pid core.PID, from, until time.Duration, prob float64, times int) {
	p.migFails = append(p.migFails, &migFail{
		point: point, pid: pid, from: from, until: until, prob: prob, remaining: times,
	})
}

// CrashHost fail-stops a host immediately (see core.Cluster.CrashHost for
// the semantics: processes destroyed, home dependents killed, FS recovery).
func (p *Plane) CrashHost(env *sim.Env, host rpc.HostID) {
	p.cluster.CrashHost(env, host)
}

// RestartHost brings a crashed host back with empty tables.
func (p *Plane) RestartHost(env *sim.Env, host rpc.HostID) {
	p.cluster.RestartHost(env, host)
}

// RebootHost crash-restarts a host in one step: the old incarnation's state
// is lost but the machine answers pings again immediately, under a bumped
// epoch. Detection has no down-time window to observe — only the epoch.
func (p *Plane) RebootHost(env *sim.Env, host rpc.HostID) {
	p.cluster.Reboot(env, host)
}

// ScheduleReboot spawns an activity that reboots host at `at`.
// Call before the cluster runs.
func (p *Plane) ScheduleReboot(host rpc.HostID, at time.Duration) {
	p.cluster.Boot(fmt.Sprintf("fault-reboot-%v", host), func(env *sim.Env) error {
		if err := env.Sleep(at); err != nil {
			return err
		}
		p.RebootHost(env, host)
		return nil
	})
}

// ScheduleCrash spawns an activity that crashes host at `at` and, when dur >
// 0, restarts it dur later. Call before the cluster runs.
func (p *Plane) ScheduleCrash(host rpc.HostID, at, dur time.Duration) {
	p.cluster.Boot(fmt.Sprintf("fault-crash-%v", host), func(env *sim.Env) error {
		if err := env.Sleep(at); err != nil {
			return err
		}
		p.CrashHost(env, host)
		if dur > 0 {
			if err := env.Sleep(dur); err != nil {
				return err
			}
			p.RestartHost(env, host)
		}
		return nil
	})
}

// --- hook implementations ---

// Intercept implements rpc.Injector: it decides the fate of one call attempt
// from the installed schedule and the private random stream.
func (p *Plane) Intercept(env *sim.Env, from, to rpc.HostID, service string, attempt int) rpc.Verdict {
	now := env.Now()
	var v rpc.Verdict
	for _, pt := range p.parts {
		if now >= pt.from && now < pt.until && pt.group[from] != pt.group[to] {
			v.DropRequest = true
			p.injected++
			return v
		}
	}
	for _, r := range p.drops {
		if !r.matches(now, from, to) || p.rng.Float64() >= r.prob {
			continue
		}
		switch {
		case r.dup:
			v.Duplicate = true
		case p.rng.Intn(2) == 0:
			v.DropRequest = true
		default:
			v.DropReply = true
		}
		p.injected++
	}
	for _, r := range p.delays {
		if r.matches(now, from, to) && p.rng.Float64() < r.prob {
			v.Delay += r.delay
			p.injected++
		}
	}
	return v
}

// failpoint implements core.FailpointFunc.
func (p *Plane) failpoint(env *sim.Env, name string, pid core.PID) error {
	now := env.Now()
	for _, f := range p.migFails {
		if f.point != name || f.remaining == 0 {
			continue
		}
		if now < f.from || now >= f.until {
			continue
		}
		if (f.pid != core.PID{}) && f.pid != pid {
			continue
		}
		if f.prob < 1 && p.rng.Float64() >= f.prob {
			continue
		}
		if f.remaining > 0 {
			f.remaining--
		}
		return fmt.Errorf("%w: %s for %v at %v", ErrInjected, name, pid, now)
	}
	return nil
}
