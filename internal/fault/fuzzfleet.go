package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sprite/internal/core"
	"sprite/internal/fleet"
	"sprite/internal/hostsel"
	"sprite/internal/recovery"
	"sprite/internal/rpc"
	"sprite/internal/sim"
	"sprite/internal/trace"
)

// This file is the fleet-plane scenario family: seed-derived storms of
// owner returns (eviction bursts), flapping hosts (short reboots),
// correlated rack failures, and manual cordons, all mutating the fleet
// manager's drain schedule while checkpointed jobs run under it. The
// drain-safety audit (no resident lost, none double-placed, drained hosts
// end empty), the claim ledger when gossip rides along, and the
// zero-jobs-lost requirement are checked on every run. Like the base
// fuzzer, a scenario is a pure function of its seed.

// FleetEventKind enumerates the storm mutations.
type FleetEventKind int

// Storm mutation kinds.
const (
	// FleetEvictStorm: owners return on a band of hosts at once — input
	// notes, EvictAll, and pricer eviction observations.
	FleetEvictStorm FleetEventKind = iota
	// FleetFlap: one host power-cycles with no warning.
	FleetFlap
	// FleetRackFail: a contiguous band of hosts crashes together and
	// restarts together after Dur — the correlated-failure case gossip and
	// health scoring must survive.
	FleetRackFail
	// FleetCordon: an operator cordons a host by hand mid-storm.
	FleetCordon
)

func (k FleetEventKind) String() string {
	switch k {
	case FleetEvictStorm:
		return "evict-storm"
	case FleetFlap:
		return "flap"
	case FleetRackFail:
		return "rack-fail"
	case FleetCordon:
		return "cordon"
	default:
		return "?"
	}
}

// FleetEvent is one scheduled storm mutation. Host is a workstation index;
// Span widens storms and rack failures to a band [Host, Host+Span).
type FleetEvent struct {
	Kind FleetEventKind
	Host int
	Span int
	At   time.Duration
	Dur  time.Duration // rack-fail: restart delay
}

// FleetScenario is a complete, self-describing fleet fuzz case.
type FleetScenario struct {
	Seed  int64
	Hosts int
	Jobs  int
	// Gossip runs the real gossip selector (with the claim-ledger audit)
	// as the drain-target source and wires its eviction hints into the
	// manager's health plane; off, a deterministic harness selector stands
	// in so the drain machinery itself is isolated.
	Gossip bool
	Events []FleetEvent
}

// String renders the scenario compactly for failure reports.
func (sc FleetScenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet seed=%d hosts=%d jobs=%d gossip=%t", sc.Seed, sc.Hosts, sc.Jobs, sc.Gossip)
	for _, e := range sc.Events {
		fmt.Fprintf(&b, " [%v w%d+%d at=%v dur=%v]", e.Kind, e.Host, e.Span, e.At, e.Dur)
	}
	return b.String()
}

// Report renders a fleet run for a test log or the spritesim replay. The
// base Result.Scenario field is unused by this family, so the generic
// Result.Report would print a zero scenario; this one prints the fleet
// scenario instead.
func (sc FleetScenario) Report(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %v\n", sc)
	if res.Digest != "" {
		fmt.Fprintf(&b, "  digest: %s\n", res.Digest)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	for _, e := range res.Tail {
		fmt.Fprintf(&b, "  trace: %s\n", e)
	}
	return b.String()
}

// GenFleetScenario derives a fleet scenario from a seed.
func GenFleetScenario(seed int64) FleetScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := FleetScenario{
		Seed:   seed,
		Hosts:  4 + rng.Intn(5),
		Jobs:   2 + rng.Intn(3),
		Gossip: rng.Intn(3) == 0,
	}
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		e := FleetEvent{
			Kind: FleetEventKind(rng.Intn(4)),
			Host: rng.Intn(sc.Hosts),
			Span: 1,
			At:   time.Duration(30+rng.Intn(400)) * time.Millisecond,
			Dur:  time.Duration(40+rng.Intn(120)) * time.Millisecond,
		}
		switch e.Kind {
		case FleetEvictStorm:
			e.Span = 1 + rng.Intn(sc.Hosts/2+1)
		case FleetRackFail:
			// A rack is a contiguous band; keep at least one host out of it
			// so the monitor always has a live vantage.
			e.Span = 1 + rng.Intn(sc.Hosts/2)
			if e.Host+e.Span >= sc.Hosts {
				e.Host = sc.Hosts - e.Span - 1
				if e.Host < 0 {
					e.Host, e.Span = 0, sc.Hosts-1
				}
			}
		}
		sc.Events = append(sc.Events, e)
	}
	return sc
}

// fleetHarnessSel is the deterministic stand-in selector for non-gossip
// scenarios: live, non-withdrawn hosts in sorted host order.
type fleetHarnessSel struct {
	c     *core.Cluster
	avail map[int]bool // workstation index -> available
	order []int
	stats hostsel.Stats
}

var _ hostsel.Selector = (*fleetHarnessSel)(nil)

func newFleetHarnessSel(c *core.Cluster) *fleetHarnessSel {
	s := &fleetHarnessSel{c: c, avail: make(map[int]bool)}
	for i := range c.Workstations() {
		s.avail[i] = true
		s.order = append(s.order, i)
	}
	return s
}

func (s *fleetHarnessSel) Name() string { return "fleet-harness" }

func (s *fleetHarnessSel) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	s.stats.Requests++
	var out []rpc.HostID
	for _, i := range s.order {
		h := s.c.Workstation(i).Host()
		if h == client || !s.avail[i] || s.c.HostDown(h) {
			continue
		}
		out = append(out, h)
		if len(out) == n {
			break
		}
	}
	if len(out) == 0 {
		s.stats.Denied++
		return nil, hostsel.ErrNoHosts
	}
	s.stats.Granted += uint64(len(out))
	return out, nil
}

func (s *fleetHarnessSel) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	return nil
}

func (s *fleetHarnessSel) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	for _, i := range s.order {
		if s.c.Workstation(i).Host() == host {
			s.avail[i] = available
		}
	}
	return nil
}

func (s *fleetHarnessSel) Stats() hostsel.Stats { return s.stats }

// RunFleetScenario executes one fleet scenario on the serial kernel.
func RunFleetScenario(sc FleetScenario) *Result {
	return runFleetScenario(sc, kernelCfg{})
}

// RunFleetScenarioKernel executes one fleet scenario under the chosen
// kernel, capturing the observable surface for equivalence checks.
func RunFleetScenarioKernel(sc FleetScenario, parallel bool, workers int) (*Result, *KernelObservation) {
	obs := &KernelObservation{}
	res := runFleetScenario(sc, kernelCfg{parallel: parallel, workers: workers, capture: obs})
	return res, obs
}

func runFleetScenario(sc FleetScenario, kc kernelCfg) *Result {
	res := &Result{}
	fail := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	params := fuzzParams()
	if kc.parallel {
		params.Sim.Parallel = true
		params.Sim.Workers = kc.workers
	}
	c, err := core.NewCluster(core.Options{
		Workstations: sc.Hosts,
		FileServers:  1,
		Params:       &params,
		Seed:         sc.Seed,
	})
	if err != nil {
		fail("cluster: %v", err)
		return res
	}
	c.SetDeferredReap(true)
	if err := c.SeedBinary("/bin/job", 64<<10); err != nil {
		fail("seed: %v", err)
		return res
	}
	lg := trace.New(512)
	if kc.capture != nil {
		var full strings.Builder
		ring := lg.Func()
		c.SetTrace(func(at time.Duration, kind, detail string) {
			fmt.Fprintf(&full, "%v %s %s\n", at, kind, detail)
			ring(at, kind, detail)
		})
		defer func() { kc.capture.Trace = full.String() }()
	} else {
		c.SetTrace(lg.Func())
	}

	mon := recovery.NewMonitor(c, recovery.Params{
		Interval:      10 * time.Millisecond,
		FailThreshold: 2,
		Reap:          true,
	})
	sup := recovery.NewSupervisor(c, mon, recovery.SupervisorParams{
		MaxRestarts:     6,
		CheckpointEvery: 20 * time.Millisecond,
		Dir:             "/ckpt",
	})
	m := fleet.New(c, fleet.Params{
		Tick:             5 * time.Millisecond,
		CordonThreshold:  55,
		CordonGrace:      15 * time.Millisecond,
		DrainPassTimeout: 25 * time.Millisecond,
		CleanProbes:      2,
		HalfLife:         40 * time.Millisecond,
	})
	m.SetMonitor(mon)
	m.SetSupervisor(sup)

	var gossip *hostsel.Probabilistic
	if sc.Gossip {
		gp := hostsel.DefaultProbabilisticParams()
		gp.Interval = 50 * time.Millisecond
		gossip = hostsel.NewProbabilistic(c, gp)
		ledger := hostsel.NewClaimLedger(gossip, c, gp.ClaimLease)
		ledger.Register(c)
		m.SetSelector(ledger)
		m.WatchGossip(gossip)
		c.Boot("fleet-gossip", func(env *sim.Env) error {
			gossip.StartDaemons(env)
			return nil
		})
	} else {
		m.SetSelector(newFleetHarnessSel(c))
	}

	mon.Start()
	m.Start()

	// The storm scheduler: one activity replays the event list in time
	// order, so mutations interleave with the controller deterministically.
	events := append([]FleetEvent(nil), sc.Events...)
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	c.Boot("fleet-storm", func(env *sim.Env) error {
		for _, e := range events {
			if wait := e.At - env.Now(); wait > 0 {
				if err := env.Sleep(wait); err != nil {
					return err
				}
			}
			switch e.Kind {
			case FleetEvictStorm:
				for i := e.Host; i < e.Host+e.Span && i < sc.Hosts; i++ {
					k := c.Workstation(i)
					if c.HostDown(k.Host()) {
						continue
					}
					k.NoteInput(env.Now())
					m.NoteEviction(k.Host(), env.Now())
					_ = k.EvictAll(env)
				}
			case FleetFlap:
				h := c.Workstation(e.Host).Host()
				c.Reboot(env, h)
			case FleetRackFail:
				for i := e.Host; i < e.Host+e.Span && i < sc.Hosts; i++ {
					h := c.Workstation(i).Host()
					if !c.HostDown(h) {
						c.CrashHost(env, h)
					}
				}
				if err := env.Sleep(e.Dur); err != nil {
					return err
				}
				for i := e.Host; i < e.Host+e.Span && i < sc.Hosts; i++ {
					h := c.Workstation(i).Host()
					if c.HostDown(h) {
						c.RestartHost(env, h)
					}
				}
			case FleetCordon:
				m.Cordon(env, c.Workstation(e.Host).Host(), "storm")
			}
		}
		return nil
	})

	jobCfg := core.ProcConfig{Binary: "/bin/job", CodePages: 8, HeapPages: 16, StackPages: 2}
	c.Boot("fleet-jobs", func(env *sim.Env) error {
		var handles []*recovery.Handle
		for i := 0; i < sc.Jobs; i++ {
			h, err := sup.Submit(env, fmt.Sprintf("job%d", i), jobCfg,
				recovery.ComputeJob(150*time.Millisecond, 10*time.Millisecond))
			if err != nil {
				return fmt.Errorf("submit job%d: %w", i, err)
			}
			handles = append(handles, h)
			if err := env.Sleep(15 * time.Millisecond); err != nil {
				return err
			}
		}
		for _, h := range handles {
			if _, err := h.Done().Wait(env); err != nil && err != recovery.ErrJobLost {
				return fmt.Errorf("join %s: %w", h.Name(), err)
			}
		}
		// Let in-flight drains and readmissions settle, then unwind the
		// planes so the run quiesces.
		if err := env.Sleep(500 * time.Millisecond); err != nil {
			return err
		}
		if gossip != nil {
			gossip.Stop()
		}
		mon.Stop()
		sup.Stop()
		m.Stop()
		return nil
	})

	rerr := c.Run(fuzzMaxSim)
	if rerr != nil {
		fail("run: %v", rerr)
	}
	if n := c.Sim().LiveActivities(); n > 0 {
		fail("hang: %d activities still live at the %v horizon", n, fuzzMaxSim)
	}
	// Every host always comes back in this family, so a lost job means the
	// fleet/recovery planes dropped work — the storm never justifies it.
	if lost := sup.Lost(); len(lost) > 0 {
		fail("jobs lost: %v", lost)
	}
	res.Violations = append(res.Violations, c.CheckInvariants(true)...)

	snap := c.MetricsSnapshot()
	res.Digest = fmt.Sprintf("t=%v cordons=%d drains=%d/%d remediations=%d readmissions=%d moved=%d evac=%d exited=%d lost=%d",
		c.Sim().Now(),
		snap.Counters["fleet.cordons"],
		snap.Counters["fleet.drains.started"], snap.Counters["fleet.drains.completed"],
		snap.Counters["fleet.remediations"], snap.Counters["fleet.readmissions"],
		snap.Counters["fleet.procs.migrated"], snap.Counters["fleet.procs.evacuated"],
		snap.Counters["fleet.procs.exited"], len(sup.Lost()))
	if res.Failed() {
		res.Tail = lg.Tail(20)
	}
	if kc.capture != nil {
		if rerr != nil {
			kc.capture.RunErr = rerr.Error()
		}
		kc.capture.Order = c.Sim().OrderDigest()
		kc.capture.Digest = res.Digest
		kc.capture.Metrics = snap.Text()
		kc.capture.Violations = append([]string(nil), res.Violations...)
	}
	return res
}

// ShrinkFleet greedily minimizes a failing fleet scenario: drop storm
// events one at a time, drop gossip, then halve the job count, keeping
// every step that still fails. Deterministic runs make "still fails"
// exact.
func ShrinkFleet(sc FleetScenario) (FleetScenario, *Result) {
	res := RunFleetScenario(sc)
	if !res.Failed() {
		return sc, res
	}
	cur := sc
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Events); i++ {
			cand := cur
			cand.Events = make([]FleetEvent, 0, len(cur.Events)-1)
			cand.Events = append(cand.Events, cur.Events[:i]...)
			cand.Events = append(cand.Events, cur.Events[i+1:]...)
			if r := RunFleetScenario(cand); r.Failed() {
				cur, res = cand, r
				changed = true
				break
			}
		}
		if !changed && cur.Gossip {
			cand := cur
			cand.Gossip = false
			if r := RunFleetScenario(cand); r.Failed() {
				cur, res = cand, r
				changed = true
			}
		}
		if !changed && cur.Jobs > 1 {
			cand := cur
			cand.Jobs = cur.Jobs / 2
			if r := RunFleetScenario(cand); r.Failed() {
				cur, res = cand, r
				changed = true
			}
		}
	}
	return cur, res
}
