package fault

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprite/internal/core"
	"sprite/internal/fs"
	"sprite/internal/sim"
	"sprite/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the lockstep golden under testdata/")

// lockstepSnapshot exercises the lookahead-collapse edge case: a
// zero-latency network gives the conservative kernel zero lookahead, so
// every parallel window degenerates to a single committed event (lockstep)
// while confined background daemons still ride the worker path. The
// snapshot captures the committed-order digest, the collector state, and
// the full metrics rendering.
func lockstepSnapshot(t *testing.T, workers int) string {
	t.Helper()
	params := core.DefaultParams()
	params.Net.Latency = 0
	if workers > 0 {
		params.Sim = core.SimParams{Parallel: true, Workers: workers}
	}
	c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 11, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Sim().Lookahead(); got != 0 {
		t.Fatalf("zero-latency link produced lookahead %v, want 0 (horizon collapse not engaged)", got)
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		t.Fatal(err)
	}
	bg := workload.StartBgLoad(c.Sim(), c.Metrics(), workload.BgLoadConfig{
		Hosts: 4, ReportEvery: 5, Ticks: 30,
	})
	src, dst := c.Workstation(0), c.Workstation(1)
	c.Boot("boot", func(env *sim.Env) error {
		p, err := src.StartProcess(env, "lockstep", func(ctx *core.Ctx) error {
			if _, err := ctx.Open("/data/ls", fs.ReadWriteMode, fs.OpenOptions{Create: true}); err != nil {
				return err
			}
			if err := ctx.TouchHeap(0, 8, true); err != nil {
				return err
			}
			return ctx.Migrate(dst.Host())
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 8, StackPages: 1})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if n := c.Sim().LiveActivities(); n != 0 {
		t.Fatalf("workers=%d leaked %d activities", workers, n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "order=%#x bg_reports=%d t=%v\n", c.Sim().OrderDigest(), bg.Received(), c.Sim().Now())
	b.WriteString(c.MetricsSnapshot().Text())
	return b.String()
}

// TestGoldenLockstepZeroLatency pins the horizon-collapse golden: serial
// and parallel at several worker counts must render the identical snapshot,
// and that snapshot is frozen under testdata/ so the fallback-to-lockstep
// path cannot silently change shape.
func TestGoldenLockstepZeroLatency(t *testing.T) {
	got := lockstepSnapshot(t, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		if par := lockstepSnapshot(t, workers); par != got {
			t.Fatalf("workers=%d diverged from serial under zero lookahead:\n--- got ---\n%s\n--- want ---\n%s", workers, par, got)
		}
	}
	path := filepath.Join("testdata", "lockstep_zero_latency.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("lockstep snapshot changed vs %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
