package fault

import (
	"flag"
	"os"
	"strconv"
	"testing"
)

// Replay one equivalence scenario:
//
//	go test ./internal/fault -run TestKernelEquivalence -equivseed=<seed>
var equivSeed = flag.Int64("equivseed", 0, "replay one kernel-equivalence scenario by seed")

// equivWorkers are the parallel worker counts every scenario is checked at.
var equivWorkers = []int{2, 4, 8}

// equivSmokeN is the scenario budget for the plain `go test` run; the
// sim-level property suite (internal/sim) covers 50+ seeds of raw kernel
// behaviour, so the cluster-level budget here trades seed count for the
// much larger per-seed surface (full trace + metrics bytes). Set
// SPRITE_EQUIV=<n> for a longer sweep.
const equivSmokeN = 10

// TestKernelEquivalence is the cluster-level half of the serial≡parallel
// contract: full fuzz scenarios — migrations, crashes, partitions, gossip,
// confined background load — must produce byte-identical traces, metrics
// snapshots, order digests, and invariant verdicts under the parallel
// kernel at 2, 4, and 8 workers. Failures shrink to a minimal scenario.
func TestKernelEquivalence(t *testing.T) {
	const bgHosts = 6
	check := func(seed int64) {
		sc := GenScenario(seed)
		if diffs := EquivCheck(sc, bgHosts, equivWorkers); len(diffs) > 0 {
			min, minDiffs := ShrinkEquiv(sc, bgHosts, equivWorkers)
			t.Fatalf("seed %d diverged (replay: go test ./internal/fault -run TestKernelEquivalence -equivseed=%d):\n  %v\nshrunk to %v:\n  %v",
				seed, seed, diffs, min, minDiffs)
		}
	}
	if *equivSeed != 0 {
		check(*equivSeed)
		return
	}
	n := equivSmokeN
	if s := os.Getenv("SPRITE_EQUIV"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	for i := 0; i < n; i++ {
		check(int64(2000 + i))
	}
}

// TestKernelObservationComplete guards the comparison surface itself: a
// run must actually produce trace bytes, metrics bytes, a digest, and
// background-load reports — otherwise EquivCheck could go green by
// comparing empty strings.
func TestKernelObservationComplete(t *testing.T) {
	obs := RunScenarioKernel(GenScenario(2001), 0, 6)
	if obs.Trace == "" {
		t.Error("no trace captured")
	}
	if obs.Metrics == "" {
		t.Error("no metrics captured")
	}
	if obs.Digest == "" {
		t.Error("no digest captured")
	}
	if obs.Order == 0 {
		t.Error("order digest is zero")
	}
	if obs.BgReports == 0 {
		t.Error("no background-load reports reached the collector")
	}
	if obs.RunErr != "" || len(obs.Violations) > 0 {
		t.Errorf("baseline scenario not clean: err=%q violations=%v", obs.RunErr, obs.Violations)
	}
}
