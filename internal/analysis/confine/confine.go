// Package confine statically enforces the confined-activity contract
// (DESIGN.md §13) that the parallel kernel's runtime guards — the
// sim.ErrConfinedContract panics — only catch when a seed happens to
// drive execution through the offending line.
//
// The call graph's spawn roots (Simulation.SpawnOn, Env.SpawnOn with a
// non-zero shard, Env.Spawn, Cluster.Boot*/BootOn) mark which function
// bodies run confined; dataflow's reachability closure extends that over
// direct calls, func-value references, enclosed literals, and same-shard
// spawns. Any reachable function that calls an exclusive-only sim API,
// uses raw goroutine/channel concurrency, or writes package-level state
// is reported with the full witness chain back to the spawn point, so
// the diagnostic reads like the stack trace the runtime panic would have
// produced — before anything runs.
//
// The per-function shardedstate analyzer only sees violations written
// directly inside a spawn literal; confine follows the calls out of it.
package confine

import (
	"sort"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/dataflow"
	"sprite/internal/analysis/lint"
)

// Analyzer is the whole-tree confined-contract checker.
var Analyzer = &dataflow.TreeAnalyzer{
	Name: "confine",
	Doc:  "confined-reachable code calling exclusive-only sim APIs, raw concurrency, or writing cross-shard state",
	Run:  run,
}

func run(t *dataflow.Tree) ([]lint.Diagnostic, error) {
	reach := t.ConfinedReachable()
	ids := make([]callgraph.FuncID, 0, len(reach))
	for id := range reach {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var diags []lint.Diagnostic
	for _, id := range ids {
		s := t.Sums[id]
		if s == nil {
			continue
		}
		chain := reach[id].String()
		report := func(facts []dataflow.Fact) {
			for _, f := range facts {
				diags = append(diags, lint.Diagnostic{
					Pos:      f.Pos,
					Analyzer: "confine",
					Message:  f.What + " — reachable from confined spawn: " + chain,
				})
			}
		}
		report(s.BannedCalls)
		report(s.Concurrency)
		report(s.GlobalWrites)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
