package confine

import (
	"testing"

	"sprite/internal/analysis/linttest"
)

func TestConfine(t *testing.T) {
	linttest.RunTree(t, Analyzer, "a")
}
