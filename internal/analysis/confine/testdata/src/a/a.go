// Fixture: every violation here sits one or more calls below the spawn
// point, in plain named functions. The per-function shardedstate analyzer
// only inspects spawn callback literals, so it reports nothing in this
// file — confine's reachability closure is what connects the dots.
package a

import sim "sprite/internal/sim"

var crossShard = map[string]int{}

func Boot(s *sim.Simulation) {
	s.SpawnOn(3, "worker", workerBody)
	s.SpawnOn(0, "controller", exclusiveBody)
}

func workerBody(env *sim.Env) error {
	helper(env)
	spin(env)
	return nil
}

func helper(env *sim.Env) {
	_ = env.Rand()      // want `sim\.Env\.Rand is banned on confined shards \(use Env\.LocalRand\) — reachable from confined spawn: SpawnOn -> a\.workerBody -> a\.helper`
	crossShard["x"] = 1 // want `writes package-level a\.crossShard — reachable from confined spawn: SpawnOn -> a\.workerBody -> a\.helper`
}

func spin(env *sim.Env) {
	tick()
}

func tick() {
	ch := make(chan int)
	go drain(ch) // want `raw go statement \(activities must be spawned through sim\) — reachable from confined spawn: SpawnOn -> a\.workerBody -> a\.spin -> a\.tick`
}

func drain(ch chan int) {
	<-ch // want `channel receive \(cross-shard traffic must use sim\.Mailbox\) — reachable from confined spawn: SpawnOn -> a\.workerBody -> a\.spin -> a\.tick -> a\.drain`
}

// exclusiveBody runs on shard 0: the same banned API is legal there, and
// nothing below it is reported.
func exclusiveBody(env *sim.Env) error {
	exclusiveHelper(env)
	return nil
}

func exclusiveHelper(env *sim.Env) { _ = env.Rand() }
