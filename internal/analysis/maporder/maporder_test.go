package maporder_test

import (
	"testing"

	"sprite/internal/analysis/linttest"
	"sprite/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "a")
}
