// Package maporder flags the classic nondeterminism leak: ranging over a
// map while doing something order-sensitive in the body — appending to a
// slice, printing, writing to a builder/hash, sending on a channel, or
// emitting a trace event. Go randomizes map iteration per run, so any of
// those turns a byte-identical golden or a seed-replayable fuzz digest
// into a coin flip.
//
// The endorsed fix is the collect-then-sort idiom, and the analyzer
// understands its common shape: an append inside the range is accepted
// when the enclosing function sorts afterwards (any call mentioning "sort"
// after the loop — sort.Slice, slices.Sort, or a local sortProcs-style
// helper). Direct output (fmt.Fprintf, Write*, channel sends, emit) inside
// the body is always flagged — no later sort can repair interleaved
// output. Commutative work (summing, map writes, keyed Gauge.Set) passes.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sprite/internal/analysis/lint"
)

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work (append/print/send/emit) inside a range over a map without a subsequent sort",
	Run:  run,
}

// sinkMethods are method names whose call inside a map range counts as
// ordered output: stream writers, hashes, and the cluster's event/trace
// emitters.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"emit":        true,
	"Emit":        true,
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncBody(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// inspectShallow walks n without descending into nested function literals
// (each function body is checked on its own when the file walk reaches it).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

func checkFuncBody(pass *lint.Pass, body *ast.BlockStmt) {
	var mapRanges []*ast.RangeStmt
	inspectShallow(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && rangesOverMap(pass, rs) {
			mapRanges = append(mapRanges, rs)
		}
		return true
	})
	for _, rs := range mapRanges {
		checkRangeBody(pass, body, rs)
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func rangesOverMap(pass *lint.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkRangeBody(pass *lint.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	inspectShallow(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, funcBody, rs, n)
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send inside range over map: receiver sees a random order; iterate sorted keys instead")
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.TokPos, "string += inside range over map accumulates in random order; iterate sorted keys instead")
			}
		}
		return true
	})
}

func checkCall(pass *lint.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, call *ast.CallExpr) {
	// Builtin append: nondeterministic element order unless the target
	// slice is per-iteration scratch (declared inside the body) or the
	// caller sorts after the loop.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
		if isBuiltin && len(call.Args) > 0 && !declaredWithin(pass, call.Args[0], rs.Body) && !sortsAfter(pass, funcBody, rs) {
			pass.Reportf(call.Pos(), "append inside range over map without a later sort: slice order changes run to run; sort the result or iterate sorted keys")
		}
		return
	}
	fn := lint.FuncObjOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
		pass.Reportf(call.Pos(), "fmt.%s inside range over map emits output in random order; iterate sorted keys instead", fn.Name())
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sinkMethods[fn.Name()] {
		pass.Reportf(call.Pos(), "%s call inside range over map feeds an ordered sink in random order; iterate sorted keys instead", fn.Name())
	}
}

// declaredWithin reports whether e names a variable declared inside block:
// a slice created fresh each map iteration accumulates only that
// iteration's elements, so its order owes nothing to map iteration.
func declaredWithin(pass *lint.Pass, e ast.Expr, block *ast.BlockStmt) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && block.Pos() <= obj.Pos() && obj.Pos() <= block.End()
}

// sortsAfter reports whether the function body contains, after the range
// statement, a call whose name mentions "sort" (sort.Slice, slices.Sort,
// or a local helper like sortProcs) — the collect-then-sort idiom.
func sortsAfter(pass *lint.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	inspectShallow(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if x, ok := fun.X.(*ast.Ident); ok {
				name = x.Name + "." + name // "sort.Slice", "slices.SortFunc"
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}
