// Fixture for the maporder analyzer: order-sensitive work inside a range
// over a map is a violation unless the collect-then-sort idiom (or
// per-iteration scratch) makes the map's random order irrelevant.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over map without a later sort`
	}
	return out
}

// collect-then-sort: the append is fine because the function sorts after
// the loop.
func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// a local helper whose name mentions sort also counts.
func appendThenHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(s []string) { sort.Strings(s) }

// per-iteration scratch: the slice is declared inside the body, so its
// order owes nothing to map iteration.
func bodyLocalScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		total += len(evens)
	}
	return total
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

func writerSink(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString call inside range over map`
	}
	return b.String()
}

func channelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

func stringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string \+= inside range over map`
	}
	return s
}

// commutative accumulation is fine.
func commutative(m map[string]int) int {
	sum := 0
	inverse := make(map[int]string, len(m))
	for k, v := range m {
		sum += v
		inverse[v] = k
	}
	return sum + len(inverse)
}

// ranging over a slice is not a map range.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //spritelint:allow maporder fixture exercises the escape hatch
	}
	return out
}
