package linttest

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"sprite/internal/analysis/dataflow"
	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
)

// RunTree is the tree-analyzer counterpart of Run: it loads
// testdata/src/<pkgname> plus every stub package it imports (transitively)
// as a small whole program, runs the interprocedural engine over it, and
// compares the analyzer's diagnostics — restricted to the fixture
// package's own files — against the fixture's want annotations.
//
// Stub packages under testdata/src take part in the analysis as real
// packages: a stub at sprite/internal/sim is recognized as trusted and
// modeled, while a non-trusted stub (a fake helper package) gets its own
// computed summaries, so fixtures can stage cross-package violations.
func RunTree(t *testing.T, a *dataflow.TreeAnalyzer, pkgname string) *dataflow.Tree {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(srcRoot, pkgname)

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}

	stubFiles, external, err := resolveStubTree(fset, srcRoot, files)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	exports, err := load.ExportData(moduleRoot(t), external)
	if err != nil {
		t.Fatalf("export data for fixture imports: %v", err)
	}
	base := load.NewImporter(fset, exports, nil)
	imp := &layeredImporter{checked: make(map[string]*types.Package), base: base}

	// Type-check stubs callees-first: a stub is ready once every stub it
	// imports is already checked.
	var pkgs []*load.Package
	pending := make(map[string][]*ast.File, len(stubFiles))
	for path, fs := range stubFiles {
		pending[path] = fs
	}
	for len(pending) > 0 {
		progressed := false
		var ready []string
		for path, fs := range pending {
			ok := true
			for _, ip := range importPaths(fs) {
				if _, isStub := stubFiles[ip]; isStub && imp.checked[ip] == nil {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, path)
			}
		}
		sort.Strings(ready)
		for _, path := range ready {
			pkgs = append(pkgs, checkOne(t, fset, imp, path, pending[path]))
			delete(pending, path)
			progressed = true
		}
		if !progressed {
			t.Fatalf("import cycle among fixture stubs: %v", keys(pending))
		}
	}
	pkgs = append(pkgs, checkOne(t, fset, imp, pkgname, files))

	tree := dataflow.Analyze(pkgs, dataflow.Options{})
	diags, err := a.Run(tree)
	if err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	// Only the fixture package's own diagnostics are compared; stub
	// packages exist to be called into, not asserted on.
	var own []lint.Diagnostic
	for _, d := range diags {
		if filepath.Dir(d.Pos.Filename) == dir {
			own = append(own, d)
		}
	}
	own = lint.NewSuppressor(fset, files).Filter(own)
	compare(t, fset, files, own)
	return tree
}

// resolveStubTree collects the transitive stub packages under srcRoot and
// the external import paths needing export data, keeping the parsed stub
// files (unlike resolveImports, whose callers only need directories).
func resolveStubTree(fset *token.FileSet, srcRoot string, files []*ast.File) (map[string][]*ast.File, []string, error) {
	stubs := make(map[string][]*ast.File)
	seen := make(map[string]bool)
	var external []string
	queue := files
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			stubDir := filepath.Join(srcRoot, filepath.FromSlash(path))
			if fs, err := parseDir(fset, stubDir); err == nil {
				stubs[path] = fs
				queue = append(queue, fs...)
			} else {
				external = append(external, path)
			}
		}
	}
	sort.Strings(external)
	return stubs, external, nil
}

func importPaths(files []*ast.File) []string {
	var out []string
	for _, f := range files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil {
				out = append(out, p)
			}
		}
	}
	return out
}

func checkOne(t *testing.T, fset *token.FileSet, imp *layeredImporter, path string, files []*ast.File) *load.Package {
	t.Helper()
	pkg := &load.Package{ImportPath: path, Fset: fset, Files: files}
	pkg.Types, pkg.Info = load.Check(fset, path, files, imp, &pkg.TypeErrors)
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture type error in %s: %v", path, e)
	}
	imp.checked[path] = pkg.Types
	return pkg
}

// layeredImporter serves already-checked fixture packages first and falls
// back to export data for real dependencies.
type layeredImporter struct {
	checked map[string]*types.Package
	base    types.Importer
}

func (l *layeredImporter) Import(path string) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	return l.base.Import(path)
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
