// Package linttest is the fixture harness for spritelint analyzers — a
// stdlib-only stand-in for golang.org/x/tools/go/analysis/analysistest
// (unavailable offline). A fixture lives in the analyzer's
// testdata/src/<pkg>/ directory and annotates the lines it expects
// diagnostics on:
//
//	rand.Intn(4) // want `global rand\.Intn`
//
// Each `// want` comment holds one or more quoted regular expressions, one
// per expected diagnostic on that line, in column order; a line with no
// want comment must produce no diagnostics. Imports resolve first against
// sibling stub packages under testdata/src (so fixtures can fake
// sprite/internal/core and friends), then against real packages via `go
// list -export` run at the module root. Suppression comments
// (//spritelint:allow) are honored, so fixtures exercise the escape hatch
// by pairing an allow comment with the absence of a want.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
)

// Run loads testdata/src/<pkgname> (relative to the test's working
// directory), applies the analyzer, and compares the surviving diagnostics
// against the fixture's want annotations. It returns the analyzer's result
// value for checks beyond diagnostics (e.g. failpointreg's site list).
func Run(t *testing.T, a *lint.Analyzer, pkgname string) any {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(srcRoot, pkgname)

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}

	srcDirs, external, err := resolveImports(fset, srcRoot, files)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	exports, err := load.ExportData(moduleRoot(t), external)
	if err != nil {
		t.Fatalf("export data for fixture imports: %v", err)
	}
	imp := load.NewImporter(fset, exports, srcDirs)

	var terrs []error
	tpkg, info := load.Check(fset, pkgname, files, imp, &terrs)
	for _, e := range terrs {
		t.Errorf("fixture type error: %v", e)
	}

	diags, result, err := lint.Run(a, fset, files, tpkg, info)
	if err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = lint.NewSuppressor(fset, files).Filter(diags)
	compare(t, fset, files, diags)
	return result
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

// resolveImports walks the fixture's import graph: paths with a directory
// under srcRoot become source stubs (recursively), everything else is
// external and needs export data.
func resolveImports(fset *token.FileSet, srcRoot string, files []*ast.File) (srcDirs map[string]string, external []string, err error) {
	srcDirs = make(map[string]string)
	seen := make(map[string]bool)
	queue := files
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			stubDir := filepath.Join(srcRoot, filepath.FromSlash(path))
			if st, err := os.Stat(stubDir); err == nil && st.IsDir() {
				srcDirs[path] = stubDir
				stubFiles, err := parseDir(fset, stubDir)
				if err != nil {
					return nil, nil, fmt.Errorf("stub %s: %w", path, err)
				}
				queue = append(queue, stubFiles...)
			} else {
				external = append(external, path)
			}
		}
	}
	sort.Strings(external)
	return srcDirs, external, nil
}

// moduleRoot finds the enclosing go.mod directory, where `go list` must
// run for stdlib export data.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// wantRE extracts the quoted regexps of a want comment: double-quoted
// (Go-unquoted) or backquoted chunks after "want".
var wantChunkRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	res []*regexp.Regexp
}

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int]*expectation) // file -> line -> wants
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				exp := &expectation{}
				for _, chunk := range wantChunkRE.FindAllString(rest, -1) {
					pattern := chunk
					if pattern[0] == '"' {
						unq, err := strconv.Unquote(pattern)
						if err != nil {
							t.Errorf("%s: bad want pattern %s: %v", pos, chunk, err)
							continue
						}
						pattern = unq
					} else {
						pattern = strings.Trim(pattern, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						continue
					}
					exp.res = append(exp.res, re)
				}
				if len(exp.res) == 0 {
					t.Errorf("%s: want comment with no patterns", pos)
					continue
				}
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = make(map[int]*expectation)
				}
				wants[pos.Filename][pos.Line] = exp
			}
		}
	}

	got := make(map[string]map[int][]lint.Diagnostic)
	for _, d := range diags {
		if got[d.Pos.Filename] == nil {
			got[d.Pos.Filename] = make(map[int][]lint.Diagnostic)
		}
		got[d.Pos.Filename][d.Pos.Line] = append(got[d.Pos.Filename][d.Pos.Line], d)
	}

	for file, byLine := range wants {
		for line, exp := range byLine {
			actual := got[file][line]
			if len(actual) != len(exp.res) {
				t.Errorf("%s:%d: want %d diagnostic(s), got %d: %v", file, line, len(exp.res), len(actual), messages(actual))
				continue
			}
			for i, re := range exp.res {
				if !re.MatchString(actual[i].Message) {
					t.Errorf("%s:%d: diagnostic %q does not match want pattern %q", file, line, actual[i].Message, re)
				}
			}
		}
	}
	for file, byLine := range got {
		for line, actual := range byLine {
			if wants[file] == nil || wants[file][line] == nil {
				t.Errorf("%s:%d: unexpected diagnostic(s): %v", file, line, messages(actual))
			}
		}
	}
}

func messages(ds []lint.Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Message
	}
	return out
}
