package metricname_test

import (
	"testing"

	"sprite/internal/analysis/linttest"
	"sprite/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	linttest.Run(t, metricname.Analyzer, "a")
}
