// Package metricname enforces the metric naming convention,
// area.noun[.verb]: lowercase dot-separated segments, area first
// ("rpc.bulk.retransmits", "recovery.detect_latency"). Snapshot goldens
// and the experiment tables key on these strings, so a renamed or
// misspelled metric is a silent golden break; the convention also keeps
// the sorted snapshot rendering grouped by subsystem.
//
// Dynamically-built names (per-host counters, per-phase timings) are
// allowed only when they carry a recognizable literal backbone: every
// literal fragment of the expression — including a fmt.Sprintf format with
// its verbs masked — must itself be made of conforming segments. A name
// with no literal fragment at all is flagged: nothing ties it to the
// convention or to the goldens that consume it.
//
// _test.go files are exempt: tests build scratch registries with throwaway
// names ("a.count", "t1") that never reach a golden.
package metricname

import (
	"go/ast"
	"regexp"
	"strings"

	"sprite/internal/analysis/lint"
)

// methods are the Registry entry points that mint a named instrument.
var methods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Timing":    true,
	"StartSpan": true,
}

const metricsPkg = "sprite/internal/metrics"

var (
	segmentRE = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)
	verbRE    = regexp.MustCompile(`%[#+\- 0-9.]*[a-zA-Z]`)
)

// Analyzer is the metricname check.
var Analyzer = &lint.Analyzer{
	Name: "metricname",
	Doc:  "metric names must follow area.noun[.verb] (lowercase dot-separated segments); dynamic names need a conforming literal backbone",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.FuncObjOf(pass.TypesInfo, call)
			if fn == nil || !methods[fn.Name()] || !lint.IsMethod(fn, metricsPkg, "Registry", fn.Name()) || len(call.Args) == 0 {
				return true
			}
			checkName(pass, call.Args[0])
			return true
		})
	}
	return nil, nil
}

func checkName(pass *lint.Pass, arg ast.Expr) {
	if name, ok := lint.ConstString(pass.TypesInfo, arg); ok {
		if !validFullName(name) {
			pass.Reportf(arg.Pos(), "metric name %q does not follow area.noun[.verb] (two or more lowercase dot-separated segments)", name)
		}
		return
	}
	frags, _ := fragments(pass, arg)
	if len(frags) == 0 {
		pass.Reportf(arg.Pos(), "dynamically-built metric name with no literal fragment: give it a literal area.noun backbone so snapshot goldens stay traceable")
		return
	}
	for _, frag := range frags {
		if bad, ok := badSegment(frag); ok {
			pass.Reportf(arg.Pos(), "metric name fragment %q: segment %q breaks the area.noun[.verb] convention (lowercase [a-z0-9_-])", frag, bad)
		}
	}
}

// validFullName checks a complete constant name: >= 2 segments, each
// conforming.
func validFullName(name string) bool {
	segs := strings.Split(name, ".")
	if len(segs) < 2 {
		return false
	}
	for _, s := range segs {
		if !segmentRE.MatchString(s) {
			return false
		}
	}
	return true
}

// badSegment validates one literal fragment of a dynamic name. Fragments
// may begin or end mid-name ("mig.phase.", ".calls"), so edge dots are
// fine and empty edge segments are skipped.
func badSegment(frag string) (string, bool) {
	for _, s := range strings.Split(strings.Trim(frag, "."), ".") {
		if s != "" && !segmentRE.MatchString(s) {
			return s, true
		}
	}
	return "", false
}

// fragments collects the literal pieces of a dynamic name expression:
// string constants in a concatenation chain, and the (verb-masked) format
// of a fmt.Sprintf call.
func fragments(pass *lint.Pass, e ast.Expr) (frags []string, dynamic bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		lf, ld := fragments(pass, e.X)
		rf, rd := fragments(pass, e.Y)
		return append(lf, rf...), ld || rd
	case *ast.CallExpr:
		if fn := lint.FuncObjOf(pass.TypesInfo, e); lint.IsPkgFunc(fn, "fmt", "Sprintf") && len(e.Args) > 0 {
			if format, ok := lint.ConstString(pass.TypesInfo, e.Args[0]); ok {
				return []string{verbRE.ReplaceAllString(format, "x")}, true
			}
		}
		return nil, true
	default:
		if s, ok := lint.ConstString(pass.TypesInfo, e); ok {
			return []string{s}, false
		}
		return nil, true
	}
}
