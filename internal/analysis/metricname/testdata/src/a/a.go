// Fixture for the metricname analyzer: metric names follow
// area.noun[.verb]; dynamic names need a conforming literal backbone.
package a

import (
	"fmt"

	"sprite/internal/metrics"
)

func good(r *metrics.Registry, host string) {
	r.Counter("mig.started")
	r.Gauge("host.load_current")
	r.Timing("recovery.detect-latency")
	r.StartSpan("mig.vm_copy")
	r.Counter("mig.phase." + host)                 // conforming literal backbone
	r.Timing(fmt.Sprintf("rpc.to.%s.calls", host)) // Sprintf format with verbs masked
}

func bad(r *metrics.Registry, host string) {
	r.Counter("Mig.Started")      // want `does not follow area\.noun`
	r.Gauge("oneword")            // want `does not follow area\.noun`
	r.Timing(host)                // want `dynamically-built metric name with no literal fragment`
	r.Counter("Bad-Frag." + host) // want `segment "Bad-Frag" breaks the area\.noun`
	r.StartSpan("mig..double")    // want `does not follow area\.noun`
}

func suppressed(r *metrics.Registry) {
	r.Counter("scratch") //spritelint:allow metricname fixture exercises the escape hatch
}
