// _test.go files are exempt from metricname: tests build scratch
// registries with throwaway names that never reach a snapshot golden.
package a

import "sprite/internal/metrics"

func testOnlyNames(r *metrics.Registry) {
	r.Counter("T1")
	r.Gauge("x")
}
