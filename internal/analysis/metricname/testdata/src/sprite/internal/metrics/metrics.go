// Stub of sprite/internal/metrics for the metricname fixture: only the
// Registry methods' receiver type and name argument must match the real
// package.
package metrics

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Timing struct{}
type Span struct{}

func (r *Registry) Counter(name string) *Counter { return nil }
func (r *Registry) Gauge(name string) *Gauge     { return nil }
func (r *Registry) Timing(name string) *Timing   { return nil }
func (r *Registry) StartSpan(name string) *Span  { return nil }
