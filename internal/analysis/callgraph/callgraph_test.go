package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"sprite/internal/analysis/load"
)

// mapImporter resolves imports from packages already checked in the test.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, &types.Error{Msg: "test importer: unknown package " + path}
}

// checkPkg parses+type-checks one synthetic package into a *load.Package
// sharing fset, registering it with imp for later packages to import.
func checkPkg(t *testing.T, fset *token.FileSet, imp mapImporter, path string, srcs ...string) *load.Package {
	t.Helper()
	var files []*ast.File
	for i, src := range srcs {
		name := path + "/file" + string(rune('a'+i)) + ".go"
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg := &load.Package{ImportPath: path, Fset: fset, Files: files}
	pkg.Types, pkg.Info = load.Check(fset, path, files, imp, &pkg.TypeErrors)
	for _, e := range pkg.TypeErrors {
		t.Fatalf("type error in %s: %v", path, e)
	}
	imp[path] = pkg.Types
	return pkg
}

// simStub is a minimal sprite/internal/sim with the confinement points the
// graph resolves. The import path matters: IsMethod matches on it.
const simStub = `package sim

type Env struct{}
type Simulation struct{}

func (*Env) SpawnOn(shard int, name string, fn func(*Env) error)        {}
func (*Env) Spawn(name string, fn func(*Env) error)                     {}
func (*Simulation) SpawnOn(shard int, name string, fn func(*Env) error) {}
func (*Simulation) Spawn(name string, fn func(*Env) error)              {}
`

func TestSCCCondensation(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	// even/odd are mutually recursive; loop is self-recursive; top calls
	// into both cycles; leaf is called by everything.
	pkg := checkPkg(t, fset, imp, "p", `package p

func leaf() int { return 1 }

func even(n int) bool {
	if n == 0 {
		return true
	}
	leaf()
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func loop(n int) int {
	if n == 0 {
		return leaf()
	}
	return loop(n - 1)
}

func top() {
	even(3)
	loop(3)
}
`)
	g := Build([]*load.Package{pkg})
	sccs := g.Condense()

	// Map each function to its component index.
	comp := make(map[FuncID]int)
	for i, s := range sccs {
		for _, f := range s.Funcs {
			comp[f] = i
		}
	}
	if comp["p.even"] != comp["p.odd"] {
		t.Errorf("even and odd should share an SCC: %d vs %d", comp["p.even"], comp["p.odd"])
	}
	if comp["p.even"] == comp["p.leaf"] || comp["p.loop"] == comp["p.leaf"] {
		t.Errorf("leaf must not join a recursive component")
	}
	if comp["p.loop"] == comp["p.even"] {
		t.Errorf("independent cycles must be separate components")
	}
	// Reverse topological order: callees before callers.
	if !(comp["p.leaf"] < comp["p.even"]) {
		t.Errorf("leaf (%d) must precede even/odd (%d)", comp["p.leaf"], comp["p.even"])
	}
	if !(comp["p.leaf"] < comp["p.loop"]) {
		t.Errorf("leaf (%d) must precede loop (%d)", comp["p.leaf"], comp["p.loop"])
	}
	if !(comp["p.even"] < comp["p.top"]) || !(comp["p.loop"] < comp["p.top"]) {
		t.Errorf("cycles must precede top (even %d loop %d top %d)",
			comp["p.even"], comp["p.loop"], comp["p.top"])
	}
	// The mutual cycle is one component of exactly two functions.
	cyc := sccs[comp["p.even"]].Funcs
	if len(cyc) != 2 {
		t.Errorf("even/odd component = %v, want 2 funcs", cyc)
	}
}

func TestLiteralNodesAndEncloses(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	pkg := checkPkg(t, fset, imp, "p", `package p

func f() {
	g1 := func() {
		inner := func() {}
		inner()
	}
	g1()
	func() {}() // immediately invoked
}
`)
	g := Build([]*load.Package{pkg})
	for _, id := range []FuncID{"p.f$1", "p.f$1$1", "p.f$2"} {
		if g.Nodes[id] == nil {
			t.Errorf("missing literal node %s; have %v", id, nodeIDs(g))
		}
	}
	edges := edgeSet(g, "p.f")
	if !edges["p.f$1/encloses"] || !edges["p.f$2/encloses"] {
		t.Errorf("f should enclose its literals, got %v", edges)
	}
	if !edges["p.f$1/call"] {
		t.Errorf("f calls g1 (bound literal), got %v", edges)
	}
	if !edges["p.f$2/call"] {
		t.Errorf("f immediately invokes $2, got %v", edges)
	}
	inner := edgeSet(g, "p.f$1")
	if !inner["p.f$1$1/encloses"] || !inner["p.f$1$1/call"] {
		t.Errorf("g1 should enclose+call inner, got %v", inner)
	}
}

func TestCrossPackageEdgesAndMethodValues(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	checkPkg(t, fset, imp, "q", `package q

type T struct{}

func (T) M()    {}
func Helper()   {}
`)
	pkg := checkPkg(t, fset, imp, "p", `package p

import "q"

func use(fn func()) { fn() }

func f() {
	q.Helper()
	var t q.T
	use(t.M) // method value: a ref, not a call
}
`)
	g := Build([]*load.Package{pkg})
	edges := edgeSet(g, "p.f")
	if !edges["q.Helper/call"] {
		t.Errorf("cross-package call edge missing: %v", edges)
	}
	if !edges["q.(T).M/ref"] {
		t.Errorf("method value should be a ref edge: %v", edges)
	}
	if edges["q.(T).M/call"] {
		t.Errorf("method value must not be a call edge: %v", edges)
	}
}

func TestSpawnRootResolution(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	checkPkg(t, fset, imp, "sprite/internal/sim", simStub)
	pkg := checkPkg(t, fset, imp, "p", `package p

import sim "sprite/internal/sim"

func named(env *sim.Env) error { return nil }

func factory() func(*sim.Env) error {
	return func(env *sim.Env) error { return nil }
}

func spawnAll(s *sim.Simulation, env *sim.Env, shard int) {
	s.SpawnOn(shard, "lit", func(env *sim.Env) error { return nil })
	s.SpawnOn(shard, "named", named)
	bound := func(env *sim.Env) error { return nil }
	s.SpawnOn(shard, "bound", bound)
	s.SpawnOn(shard, "factory", factory())
	s.SpawnOn(0, "exclusive", named)
	env.SpawnOn(shard, "env", named)
	env.Spawn("inherit", named)
}
`)
	g := Build([]*load.Package{pkg})

	type want struct {
		body FuncID
		kind RootKind
		via  string
	}
	wants := []want{
		{"p.spawnAll$1", ConfinedRoot, "SpawnOn"},
		{"p.named", ConfinedRoot, "SpawnOn"},
		{"p.spawnAll$2", ConfinedRoot, "SpawnOn"},
		{"p.factory$1", ConfinedRoot, "SpawnOn"},
		{"p.named", ExclusiveRoot, "SpawnOn"},
		{"p.named", ConfinedRoot, "Env.SpawnOn"},
	}
	for _, w := range wants {
		found := false
		for _, r := range g.Roots {
			if r.Body == w.body && r.Kind == w.kind && r.Via == w.via {
				found = true
			}
		}
		if !found {
			t.Errorf("missing root %+v; have %v", w, rootList(g))
		}
	}
	// Env.Spawn must not create a root (shard inherited), only a Spawn edge.
	for _, r := range g.Roots {
		if r.Via == "Env.Spawn" {
			t.Errorf("Env.Spawn must not register a root: %v", rootList(g))
		}
	}
	edges := edgeSet(g, "p.spawnAll")
	if !edges["p.named/spawn"] {
		t.Errorf("spawn edge to named missing: %v", edges)
	}
	if !edges["p.named/spawn-same"] {
		t.Errorf("Env.Spawn should leave a spawn-same edge: %v", edges)
	}
}

func TestMethodValueSpawn(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	checkPkg(t, fset, imp, "sprite/internal/sim", simStub)
	pkg := checkPkg(t, fset, imp, "p", `package p

import sim "sprite/internal/sim"

type daemon struct{}

func (d *daemon) loop(env *sim.Env) error { return nil }

func boot(s *sim.Simulation, shard int) {
	d := &daemon{}
	s.SpawnOn(shard, "d", d.loop)
}
`)
	g := Build([]*load.Package{pkg})
	found := false
	for _, r := range g.Roots {
		if r.Body == "p.(daemon).loop" && r.Kind == ConfinedRoot {
			found = true
		}
	}
	if !found {
		t.Errorf("method-value spawn unresolved: %v", rootList(g))
	}
}

func nodeIDs(g *Graph) []string {
	var out []string
	for id := range g.Nodes {
		out = append(out, string(id))
	}
	sort.Strings(out)
	return out
}

func edgeSet(g *Graph, id FuncID) map[string]bool {
	out := make(map[string]bool)
	n := g.Nodes[id]
	if n == nil {
		return out
	}
	for _, e := range n.Out {
		out[string(e.Callee)+"/"+e.Kind.String()] = true
	}
	return out
}

func rootList(g *Graph) []string {
	var out []string
	for _, r := range g.Roots {
		kind := "confined"
		if r.Kind == ExclusiveRoot {
			kind = "exclusive"
		}
		out = append(out, strings.Join([]string{string(r.Body), kind, r.Via}, "/"))
	}
	return out
}
