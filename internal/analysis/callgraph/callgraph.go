// Package callgraph builds a whole-tree static call graph over the offline
// loader's packages (internal/analysis/load), the substrate for the
// interprocedural analyzers (DESIGN.md §16). The per-package analyzers see
// one function at a time; the contracts they enforce — determinism of
// everything feeding traces and digests, the confined-shard discipline —
// are properties of call *chains*, so the graph stitches the tree back
// together:
//
//   - every function declaration and every function literal is a node,
//     identified by a stable FuncID ("sprite/internal/core.(*Kernel).Fork",
//     "sprite/internal/rpc.Call$1") that survives re-runs and is therefore
//     usable as a summary-cache key;
//   - static calls resolve through the type checker, across packages
//     (imported *types.Func objects are distinct from their source-side
//     twins, so identity is by FuncID, not object);
//   - the spawn idioms the shardedstate analyzer understands — inline
//     literals, local variables bound to literals, method values, and
//     same-or-cross-package closure factories — are resolved at every
//     confinement point (sim.Simulation.SpawnOn, sim.Env.SpawnOn,
//     core.Cluster.BootOn) and recorded as confined roots;
//   - a literal's node hangs off its enclosing declaration with an
//     Encloses edge: when the enclosing function runs in some context, the
//     literals it builds are conservatively assumed to run there too.
//
// Dynamic dispatch — interface methods, func values threaded through
// fields or maps (rpc's service handler table) — is out of reach for any
// static pass and is deliberately unresolved; DESIGN.md §16 lists it as a
// soundness limit, covered by the kernel's runtime checks.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
)

// FuncID is a stable, human-readable function identity:
//
//	pkgpath.Name            package-level function
//	pkgpath.(Recv).Name     method (pointer-ness of the receiver elided)
//	<parent>$<n>            n-th function literal inside parent, in
//	                        source order (stable across runs for
//	                        unchanged source — the cache key property)
type FuncID string

// EdgeKind classifies an outgoing reference.
type EdgeKind uint8

const (
	// Call is a direct static call (function, method, or a local variable
	// statically bound to a literal).
	Call EdgeKind = iota
	// Ref is a function referenced as a value (method value, function
	// passed as an argument) without a visible call. Reachability treats
	// a Ref from reachable code as reachable: the value exists to be
	// called, and the caller cannot see where.
	Ref
	// Encloses links a declaration to the literals defined inside it.
	Encloses
	// Spawn links a confinement point's caller to an activity body that
	// runs on an explicitly chosen shard (SpawnOn, Boot, BootOn). The
	// body's context comes from its Root entry, not from the spawner, so
	// confined reachability does NOT traverse these.
	Spawn
	// SpawnSame links a spawner to a body that inherits the spawner's
	// shard (Env.Spawn). Confined reachability traverses these: a
	// confined activity's same-shard children are confined too.
	SpawnSame
)

func (k EdgeKind) String() string {
	switch k {
	case Call:
		return "call"
	case Ref:
		return "ref"
	case Encloses:
		return "encloses"
	case Spawn:
		return "spawn"
	case SpawnSame:
		return "spawn-same"
	}
	return fmt.Sprintf("edge(%d)", k)
}

// Edge is one outgoing reference from a node.
type Edge struct {
	Callee FuncID
	Kind   EdgeKind
	// Pos is the reference site in the shared FileSet.
	Pos token.Pos
}

// Node is one function declaration or literal.
type Node struct {
	ID  FuncID
	Pkg *load.Package
	// Decl is set for declarations, Lit for literals; exactly one is
	// non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Fn is the type-checker object for declarations (nil for literals).
	Fn  *types.Func
	Out []Edge

	// scc is the condensation component index, filled by Condense.
	scc int
}

// Body returns the node's statement block (nil for a bodyless decl).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// FuncType returns the node's type expression (signature syntax).
func (n *Node) FuncType() *ast.FuncType {
	if n.Decl != nil {
		return n.Decl.Type
	}
	return n.Lit.Type
}

// Extent returns the syntactic range whose local declarations count as the
// node's own state (for a method this includes receiver and parameters).
func (n *Node) Extent() (token.Pos, token.Pos) {
	if n.Decl != nil {
		return n.Decl.Pos(), n.Decl.End()
	}
	return n.Lit.Pos(), n.Lit.End()
}

// RootKind says how an activity body enters a shard.
type RootKind uint8

const (
	// ConfinedRoot bodies run on a confined shard (> 0), concurrently
	// with other shards' windows.
	ConfinedRoot RootKind = iota
	// ExclusiveRoot bodies run on shard 0 under the serial commit order.
	ExclusiveRoot
)

// Root is one resolved spawn: the body that will run as an activity.
type Root struct {
	Body FuncID
	Kind RootKind
	// Site is the spawn call site; Via names the confinement point
	// ("SpawnOn", "Env.SpawnOn", "BootOn") for diagnostics.
	Site token.Pos
	Via  string
}

// Graph is the whole-tree call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes map[FuncID]*Node
	Roots []Root

	// byObj resolves a source-side *types.Func to its node (per-package
	// view; cross-package resolution goes through FuncID).
	byObj map[*types.Func]*Node
	// litOf resolves a literal syntax node to its graph node.
	litOf map[*ast.FuncLit]*Node
	// enclosing, for diagnostics: FuncID of the node containing a pos.
	pkgs []*load.Package
}

const (
	simPkg  = "sprite/internal/sim"
	corePkg = "sprite/internal/core"
)

// FuncIDOf computes the stable identity of a declared function or method.
// Works for both source-side and gc-imported objects.
func FuncIDOf(fn *types.Func) FuncID {
	if fn.Pkg() == nil {
		return FuncID(fn.Name()) // builtins like error.Error
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
		}
		if named, okn := t.(*types.Named); okn {
			return FuncID(fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name())
		}
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// Build constructs the graph over the loaded packages. The packages must
// share one FileSet (load.Packages guarantees it).
func Build(pkgs []*load.Package) *Graph {
	g := &Graph{
		Nodes: make(map[FuncID]*Node),
		byObj: make(map[*types.Func]*Node),
		litOf: make(map[*ast.FuncLit]*Node),
		pkgs:  pkgs,
	}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	// Pass 1: create nodes for every declaration and literal.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				id := FuncIDOf(fn)
				n := &Node{ID: id, Pkg: pkg, Decl: fd, Fn: fn}
				g.Nodes[id] = n
				g.byObj[fn] = n
				if fd.Body != nil {
					g.addLits(pkg, id, fd.Body)
				}
			}
			// Literals in package-level var initializers hang off a
			// synthetic per-file init node.
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				initID := FuncID(pkg.ImportPath + ".init#" + baseName(pkg.Fset.Position(f.Pos()).Filename))
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						g.addLits(pkg, initID, v)
					}
				}
			}
		}
	}
	// Pass 2: edges and spawn roots.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.addEdges(pkg, g.byObj[fn], fd.Body)
			}
		}
	}
	sort.Slice(g.Roots, func(i, j int) bool { return g.Roots[i].Site < g.Roots[j].Site })
	return g
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// addLits creates nodes for every function literal directly under root
// (a body block or initializer expression — never itself a node already
// registered), numbered in source order under parent; literals nested
// inside a literal number under that literal, recursively, so the ID
// encodes the lexical nesting ("pkg.F$2$1").
func (g *Graph) addLits(pkg *load.Package, parent FuncID, root ast.Node) {
	ord := 0
	ast.Inspect(root, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ord++
		id := FuncID(fmt.Sprintf("%s$%d", parent, ord))
		node := &Node{ID: id, Pkg: pkg, Lit: lit}
		g.Nodes[id] = node
		g.litOf[lit] = node
		g.addLits(pkg, id, lit.Body)
		return false
	})
}

// addEdges walks owner's body recording call, ref, encloses, and spawn
// edges; enclosed literals get their own walks (recursively) so every
// node's edges reflect only its own body.
func (g *Graph) addEdges(pkg *load.Package, owner *Node, body *ast.BlockStmt) {
	g.walkEdges(pkg, owner, body)
}

// walkEdges records owner's outgoing references, shallow (literals are
// separate nodes, linked by an Encloses edge and walked recursively).
func (g *Graph) walkEdges(pkg *load.Package, owner *Node, body *ast.BlockStmt) {
	// Pass 1: calls, spawn points, and enclosed literals.
	inspectShallow(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if e2 := g.litOf[e]; e2 != nil && e2.ID != owner.ID {
				owner.Out = append(owner.Out, Edge{Callee: e2.ID, Kind: Encloses, Pos: e.Pos()})
				g.walkEdges(pkg, e2, e.Body)
			}
			return false
		case *ast.CallExpr:
			g.callEdge(pkg, owner, e)
			return true
		}
		return true
	})
	// Pass 2: collect call-callee syntax so pass 3 doesn't re-report every
	// call as a value reference. For a method/selector callee both the
	// selector and its Sel ident are excluded.
	callees := make(map[ast.Node]bool)
	sels := make(map[*ast.Ident]bool)
	inspectShallow(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(e.Fun)
			callees[fun] = true
			if s, ok := fun.(*ast.SelectorExpr); ok {
				callees[s.Sel] = true
			}
		case *ast.SelectorExpr:
			// Any selector's Sel is reported (if at all) via the
			// SelectorExpr case in pass 3, never via the bare-Ident case.
			sels[e.Sel] = true
		}
		return true
	})
	// Pass 3: function values referenced without a call (method values,
	// functions passed as arguments). Reachability treats a Ref from live
	// code as live — the value exists to be called later.
	inspectShallow(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var id *ast.Ident
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if callees[e] || callees[e.Sel] {
				return true
			}
			id = e.Sel
		case *ast.Ident:
			if callees[n.(ast.Node)] || sels[e] {
				return true
			}
			id = e
		default:
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			owner.Out = append(owner.Out, Edge{Callee: FuncIDOf(fn), Kind: Ref, Pos: id.Pos()})
		}
		return true
	})
}

// callEdge records the edge(s) for one call expression, plus spawn roots
// at confinement points.
func (g *Graph) callEdge(pkg *load.Package, owner *Node, call *ast.CallExpr) {
	if fn := lint.FuncObjOf(pkg.Info, call); fn != nil {
		owner.Out = append(owner.Out, Edge{Callee: FuncIDOf(fn), Kind: Call, Pos: call.Pos()})
		g.spawnRoots(pkg, owner, call, fn)
		return
	}
	// Calling a local variable statically bound to a literal:
	// body := func(...){...}; body().
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, okv := pkg.Info.Uses[id].(*types.Var); okv {
			if lit := litBoundTo(pkg, v); lit != nil {
				if ln := g.litOf[lit]; ln != nil {
					owner.Out = append(owner.Out, Edge{Callee: ln.ID, Kind: Call, Pos: call.Pos()})
				}
			}
		}
	}
	// Immediately-invoked literal: func(){...}().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if ln := g.litOf[lit]; ln != nil {
			owner.Out = append(owner.Out, Edge{Callee: ln.ID, Kind: Call, Pos: call.Pos()})
		}
	}
}

// isConfinePoint reports whether fn hands its final func argument to a
// shard, and whether that shard is exclusive or confined.
func isConfinePoint(fn *types.Func, call *ast.CallExpr, pkg *load.Package) (via string, kind RootKind, arg ast.Expr, ok bool) {
	switch {
	case lint.IsMethod(fn, simPkg, "Simulation", "SpawnOn") || lint.IsMethod(fn, simPkg, "Env", "SpawnOn"):
		if len(call.Args) != 3 {
			return "", 0, nil, false
		}
		kind = ConfinedRoot
		// SpawnOn(0, ...) with a constant zero shard is the exclusive
		// shard — not a confined root.
		if tv, okc := pkg.Info.Types[call.Args[0]]; okc && tv.Value != nil && tv.Value.String() == "0" {
			kind = ExclusiveRoot
		}
		via = "SpawnOn"
		if lint.IsMethod(fn, simPkg, "Env", "SpawnOn") {
			via = "Env.SpawnOn"
		}
		return via, kind, call.Args[2], true
	case lint.IsMethod(fn, simPkg, "Simulation", "Spawn") || lint.IsMethod(fn, simPkg, "Env", "Spawn"):
		if len(call.Args) != 2 {
			return "", 0, nil, false
		}
		via = "Spawn"
		kind = ExclusiveRoot
		// Env.Spawn inherits the parent's shard: treated as confined when
		// reached from confined code (the confine analyzer's reachability
		// handles this through the Spawn edge), exclusive otherwise.
		if lint.IsMethod(fn, simPkg, "Env", "Spawn") {
			via = "Env.Spawn"
		}
		return via, kind, call.Args[1], true
	case lint.IsMethod(fn, corePkg, "Cluster", "BootOn"):
		if len(call.Args) != 3 {
			return "", 0, nil, false
		}
		// BootOn bodies must be confined-safe: on a confined cluster they
		// run on the host's shard.
		return "BootOn", ConfinedRoot, call.Args[2], true
	case lint.IsMethod(fn, corePkg, "Cluster", "Boot"):
		if len(call.Args) != 2 {
			return "", 0, nil, false
		}
		return "Boot", ExclusiveRoot, call.Args[1], true
	}
	return "", 0, nil, false
}

// spawnRoots resolves the activity argument at confinement points and
// records roots plus Spawn edges.
func (g *Graph) spawnRoots(pkg *load.Package, owner *Node, call *ast.CallExpr, fn *types.Func) {
	via, kind, arg, ok := isConfinePoint(fn, call, pkg)
	if !ok {
		return
	}
	for _, body := range g.resolveFuncExpr(pkg, arg) {
		// Env.Spawn roots are not recorded: the body runs on the parent's
		// shard, whatever that is — confined reachability follows the
		// SpawnSame edge from the parent instead.
		if via == "Env.Spawn" {
			owner.Out = append(owner.Out, Edge{Callee: body, Kind: SpawnSame, Pos: call.Pos()})
			continue
		}
		owner.Out = append(owner.Out, Edge{Callee: body, Kind: Spawn, Pos: call.Pos()})
		g.Roots = append(g.Roots, Root{Body: body, Kind: kind, Site: call.Pos(), Via: via})
	}
}

// ResolveFuncExpr resolves an expression used as an activity/callback to
// the nodes whose bodies it denotes: an inline literal, a named function
// or method value (any package in the graph), a local variable bound to a
// literal, or a closure factory call whose declaration returns literals
// (followed across packages through the graph's node index).
func (g *Graph) ResolveFuncExpr(pkg *load.Package, e ast.Expr) []FuncID {
	return g.resolveFuncExpr(pkg, e)
}

func (g *Graph) resolveFuncExpr(pkg *load.Package, e ast.Expr) []FuncID {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := g.litOf[e]; n != nil {
			return []FuncID{n.ID}
		}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[e].(type) {
		case *types.Func:
			return []FuncID{FuncIDOf(obj)}
		case *types.Var:
			if lit := litBoundTo(pkg, obj); lit != nil {
				if n := g.litOf[lit]; n != nil {
					return []FuncID{n.ID}
				}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return []FuncID{FuncIDOf(fn)}
		}
	case *ast.CallExpr:
		// Closure factory: resolve the factory's declaration (cross-package
		// through the node index) and collect returned literals.
		fn := lint.FuncObjOf(pkg.Info, e)
		if fn == nil {
			return nil
		}
		factory := g.Nodes[FuncIDOf(fn)]
		if factory == nil || factory.Decl == nil || factory.Decl.Body == nil {
			return nil
		}
		var out []FuncID
		ast.Inspect(factory.Decl.Body, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, r := range ret.Results {
					if lit, okl := ast.Unparen(r).(*ast.FuncLit); okl {
						if ln := g.litOf[lit]; ln != nil {
							out = append(out, ln.ID)
						}
					}
				}
			}
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
		return out
	}
	return nil
}

// litBoundTo finds the literal a local variable was defined as (`v :=
// func(...){...}` or `var v = func(...){...}`), or nil.
func litBoundTo(pkg *load.Package, v *types.Var) *ast.FuncLit {
	for _, f := range pkg.Files {
		if f.FileStart > v.Pos() || v.Pos() > f.FileEnd {
			continue
		}
		var found *ast.FuncLit
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || pkg.Info.Defs[id] != types.Object(v) {
						continue
					}
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						found = lit
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if pkg.Info.Defs[id] != types.Object(v) || i >= len(n.Values) {
						continue
					}
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						found = lit
					}
				}
			}
			return found == nil
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// inspectShallow walks n without descending into nested function literals.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return fn(m) && false
		}
		return fn(m)
	})
}

// SCC is one strongly connected component of the call graph (Call edges
// only — Encloses/Spawn/Ref edges do not create recursion for summary
// purposes, but see Condense's flow note).
type SCC struct {
	Funcs []FuncID
}

// Condense computes the SCC condensation of the graph restricted to the
// edge kinds that carry dataflow (Call, Encloses — an enclosed literal's
// summary feeds its parent; Ref and Spawn link contexts, not dataflow) and
// returns the components in reverse topological order: every component
// appears after all components it calls into, so a bottom-up summary pass
// can run them in slice order and see callee summaries already fixed.
// Within a component (mutual recursion) callers iterate to a fixpoint.
func (g *Graph) Condense() []SCC {
	// Tarjan, iterative (the tree's call chains are deep enough that a
	// recursive implementation risks the goroutine stack on pathological
	// fixtures).
	ids := make([]FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	index := make(map[FuncID]int, len(ids))
	low := make(map[FuncID]int, len(ids))
	onStack := make(map[FuncID]bool, len(ids))
	var stack []FuncID
	var comps [][]FuncID
	next := 0

	dataEdge := func(e Edge) bool { return e.Kind == Call || e.Kind == Encloses }

	type frame struct {
		id FuncID
		ei int
	}
	for _, start := range ids {
		if _, seen := index[start]; seen {
			continue
		}
		var frames []frame
		push := func(id FuncID) {
			index[id] = next
			low[id] = next
			next++
			stack = append(stack, id)
			onStack[id] = true
			frames = append(frames, frame{id: id})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			n := g.Nodes[f.id]
			advanced := false
			for f.ei < len(n.Out) {
				e := n.Out[f.ei]
				f.ei++
				if !dataEdge(e) {
					continue
				}
				callee := e.Callee
				if _, ok := g.Nodes[callee]; !ok {
					continue // external (stdlib / trusted) — a leaf
				}
				if _, seen := index[callee]; !seen {
					push(callee)
					advanced = true
					break
				} else if onStack[callee] {
					if index[callee] < low[f.id] {
						low[f.id] = index[callee]
					}
				}
			}
			if advanced {
				continue
			}
			// f exhausted: pop.
			if low[f.id] == index[f.id] {
				var comp []FuncID
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.id {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				for _, id := range comp {
					g.Nodes[id].scc = len(comps)
				}
				comps = append(comps, comp)
			}
			done := f.id
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.id] {
					low[parent.id] = low[done]
				}
			}
		}
	}
	// Tarjan emits components in reverse topological order already.
	out := make([]SCC, len(comps))
	for i, c := range comps {
		out[i] = SCC{Funcs: c}
	}
	return out
}

// CalleesIn returns the node's outgoing edges of the given kinds whose
// targets exist in the graph.
func (g *Graph) CalleesIn(n *Node, kinds ...EdgeKind) []Edge {
	want := make(map[EdgeKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Edge
	for _, e := range n.Out {
		if want[e.Kind] && g.Nodes[e.Callee] != nil {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the graph as sorted "caller -> callee [kind]" lines plus
// the root list — the `spritelint -graph` / `make lint-graph` debugging
// format.
func (g *Graph) Dump() string {
	var b strings.Builder
	ids := make([]FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Nodes[id]
		edges := append([]Edge(nil), n.Out...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Callee != edges[j].Callee {
				return edges[i].Callee < edges[j].Callee
			}
			return edges[i].Kind < edges[j].Kind
		})
		for _, e := range edges {
			fmt.Fprintf(&b, "%s -> %s [%s]\n", id, e.Callee, e.Kind)
		}
	}
	for _, r := range g.Roots {
		kind := "confined"
		if r.Kind == ExclusiveRoot {
			kind = "exclusive"
		}
		fmt.Fprintf(&b, "root %s %s via %s at %s\n", kind, r.Body, r.Via, g.Fset.Position(r.Site))
	}
	return b.String()
}
