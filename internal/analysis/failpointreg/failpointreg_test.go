package failpointreg_test

import (
	"reflect"
	"testing"

	"sprite/internal/analysis/failpointreg"
	"sprite/internal/analysis/linttest"
)

func TestFailpointreg(t *testing.T) {
	res := linttest.Run(t, failpointreg.Analyzer, "a")
	refs, ok := res.([]failpointreg.SiteRef)
	if !ok {
		t.Fatalf("analyzer result is %T, want []failpointreg.SiteRef", res)
	}

	type obs struct {
		name       string
		registered bool
	}
	var got []obs
	for _, r := range refs {
		got = append(got, obs{r.Name, r.Registered})
	}
	// Sites appear in source order; suppression silences the diagnostic but
	// the reference is still observed (it counts for the dead-entry audit).
	want := []obs{
		{"mig.init", true},
		{"mig.vm", true},
		{"mig.bogus", false},
		{"recovery.ping", true},
		{"mig.steams", false},
		{"mig.experimental", false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("observed sites = %v, want %v", got, want)
	}

	dead := failpointreg.DeadEntries(refs)
	wantDead := []string{"mig.streams", "mig.pcb", "recovery.restart", "fleet.drain", "fleet.remediate", "fleet.readmit"}
	if !reflect.DeepEqual(dead, wantDead) {
		t.Errorf("DeadEntries = %v, want %v", dead, wantDead)
	}
}
