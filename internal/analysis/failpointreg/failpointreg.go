// Package failpointreg cross-checks failpoint names against the registry
// in internal/fault/failpoints.go. Failpoint names are stringly-typed
// contracts shared by the kernel's injection sites, the fault plane's
// arming calls, the fuzzer's fault-kind pool, the chaos tests, and
// DESIGN.md; a typo ("mig.steams") silently arms a point nothing ever
// consults. The analyzer flags every constant failpoint name that is not
// in the registry, and the spritelint driver aggregates the names each
// package did use to flag dead registry entries after a whole-tree run.
//
// Non-constant names (the fuzzer draws its point from the registry slice
// at run time) are out of static reach and are deliberately not flagged —
// the registry-derived pool is the endorsed way to build one.
package failpointreg

import (
	"go/ast"
	"go/token"

	"sprite/internal/analysis/lint"
	"sprite/internal/fault"
)

// site describes one API whose call carries a failpoint name.
type site struct {
	pkg, typ, method string
	arg              int // index of the name argument
}

// sites are the fault-plane entry points audited for this registry.
var sites = []site{
	{pkg: "sprite/internal/core", typ: "Cluster", method: "FailAt", arg: 1},
	{pkg: "sprite/internal/core", typ: "Cluster", method: "failAt", arg: 1},
	{pkg: "sprite/internal/fault", typ: "Plane", method: "FailMigration", arg: 0},
}

// SiteRef is one constant failpoint name observed at a fault-plane call.
type SiteRef struct {
	Name       string
	Pos        token.Position
	Registered bool
}

// Analyzer is the failpointreg check. Its per-package result is a
// []SiteRef of every constant failpoint name observed; the driver
// aggregates these for the dead-entry pass and the -audit-failpoints
// listing.
var Analyzer = &lint.Analyzer{
	Name: "failpointreg",
	Doc:  "failpoint names passed to the fault plane must be registered in internal/fault/failpoints.go",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	var refs []SiteRef
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.FuncObjOf(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			for _, s := range sites {
				if !lint.IsMethod(fn, s.pkg, s.typ, s.method) || len(call.Args) <= s.arg {
					continue
				}
				name, ok := lint.ConstString(pass.TypesInfo, call.Args[s.arg])
				if !ok {
					continue // dynamic: registry-derived by construction
				}
				ref := SiteRef{
					Name:       name,
					Pos:        pass.Fset.Position(call.Args[s.arg].Pos()),
					Registered: fault.RegisteredFailpoint(name),
				}
				refs = append(refs, ref)
				if !ref.Registered {
					pass.Reportf(call.Args[s.arg].Pos(),
						"failpoint %q is not in the registry (internal/fault/failpoints.go); register it or fix the name", name)
				}
			}
			return true
		})
	}
	return refs, nil
}

// DeadEntries returns the registered failpoints none of the analyzed
// packages referenced. Meaningful only after a whole-tree run; the driver
// gates it on the ./... pattern.
func DeadEntries(refs []SiteRef) []string {
	seen := make(map[string]bool, len(refs))
	for _, r := range refs {
		seen[r.Name] = true
	}
	var dead []string
	for _, fp := range fault.Failpoints {
		if !seen[fp.Name] {
			dead = append(dead, fp.Name)
		}
	}
	return dead
}
