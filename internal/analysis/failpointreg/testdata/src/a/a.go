// Fixture for the failpointreg analyzer: constant failpoint names must be
// in the registry (internal/fault/failpoints.go); dynamic names are
// registry-derived by construction and pass.
package a

import (
	"sprite/internal/core"
	"sprite/internal/fault"
)

func arm(c *core.Cluster, p *fault.Plane, dynamic string) {
	_ = c.FailAt(nil, "mig.init", 1)
	_ = c.FailAt(nil, "mig.vm", 2)
	_ = c.FailAt(nil, "mig.bogus", 3) // want `failpoint "mig\.bogus" is not in the registry`
	p.FailMigration("recovery.ping")
	p.FailMigration("mig.steams") // want `failpoint "mig\.steams" is not in the registry`
	p.FailMigration(dynamic)      // dynamic: drawn from the registry at run time
}

func suppressed(c *core.Cluster) {
	_ = c.FailAt(nil, "mig.experimental", 4) //spritelint:allow failpointreg fixture exercises the escape hatch
}
