// Stub of sprite/internal/fault's Plane for the failpointreg fixture.
package fault

type Plane struct{}

func (p *Plane) FailMigration(point string, rest ...any) {}
