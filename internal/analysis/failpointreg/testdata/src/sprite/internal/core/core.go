// Stub of sprite/internal/core for the failpointreg fixture: only the
// fault-plane entry point's receiver type and name-argument position must
// match the real package.
package core

type PID int

type Cluster struct{}

func (c *Cluster) FailAt(env any, name string, pid PID) error { return nil }
