package dataflow

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/load"
)

// cacheVersion invalidates every cached summary when the engine's output
// format or semantics change. Bump it whenever Summary fields, the models
// table, or the extraction rules move.
const cacheVersion = "spritelint-dataflow-v1"

// Cache persists per-package summaries between whole-tree runs. The key
// is a recursive content digest — the package's own source bytes plus the
// digests of every loaded dependency — so any change anywhere below a
// package recomputes it, and cache hits are always semantically valid.
type Cache struct {
	Dir string

	digests map[string]string // import path -> digest, memoized per run
}

// DefaultCacheDir is where the driver caches summaries unless told
// otherwise.
func DefaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "spritelint")
	}
	return filepath.Join(os.TempDir(), "spritelint-cache")
}

func (c *Cache) digest(pkg *load.Package, byPath map[string]*load.Package) string {
	if c.digests == nil {
		c.digests = make(map[string]string)
	}
	if d, ok := c.digests[pkg.ImportPath]; ok {
		return d
	}
	c.digests[pkg.ImportPath] = "" // cycle guard; import cycles can't happen, but be safe
	h := sha256.New()
	h.Write([]byte(cacheVersion + "\x00" + pkg.ImportPath + "\x00"))
	var files []string
	for _, f := range pkg.Files {
		files = append(files, pkg.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(files)
	for _, name := range files {
		b, err := os.ReadFile(name)
		if err != nil {
			b = []byte("unreadable:" + err.Error())
		}
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(b)
		h.Write([]byte{0})
	}
	var deps []string
	if pkg.Types != nil {
		for _, imp := range pkg.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				deps = append(deps, imp.Path()+"="+c.digest(dep, byPath))
			}
		}
	}
	sort.Strings(deps)
	for _, d := range deps {
		h.Write([]byte(d))
		h.Write([]byte{0})
	}
	d := hex.EncodeToString(h.Sum(nil))
	c.digests[pkg.ImportPath] = d
	return d
}

func (c *Cache) path(pkg *load.Package, all []*load.Package) string {
	byPath := make(map[string]*load.Package, len(all))
	for _, p := range all {
		byPath[p.ImportPath] = p
	}
	d := c.digest(pkg, byPath)
	name := strings.ReplaceAll(pkg.ImportPath, "/", "_") + "-" + d[:16] + ".json"
	return filepath.Join(c.Dir, name)
}

// Load returns the cached summaries for pkg if its digest matches.
func (c *Cache) Load(pkg *load.Package, all []*load.Package) (map[callgraph.FuncID]*Summary, bool) {
	if c == nil || c.Dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(pkg, all))
	if err != nil {
		return nil, false
	}
	var raw map[string]*Summary
	if json.Unmarshal(b, &raw) != nil {
		return nil, false
	}
	out := make(map[callgraph.FuncID]*Summary, len(raw))
	for k, v := range raw {
		out[callgraph.FuncID(k)] = v
	}
	return out, true
}

// Store writes pkg's summaries under its current digest. Failures are
// silent: the cache is an accelerator, not a dependency.
func (c *Cache) Store(pkg *load.Package, all []*load.Package, sums map[callgraph.FuncID]*Summary) {
	if c == nil || c.Dir == "" {
		return
	}
	if os.MkdirAll(c.Dir, 0o755) != nil {
		return
	}
	raw := make(map[string]*Summary, len(sums))
	for k, v := range sums {
		raw[string(k)] = v
	}
	b, err := json.Marshal(raw)
	if err != nil {
		return
	}
	tmp := c.path(pkg, all) + ".tmp"
	if os.WriteFile(tmp, b, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, c.path(pkg, all))
}
