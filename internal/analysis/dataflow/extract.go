package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/lint"
)

// extract computes each node's Summary from the converged taint
// environment: returns, sinks, mutations, contract facts. Facts are
// shallow — each node owns its body minus nested literals, which carry
// their own — so reachability joins attribute violations to the function
// that actually runs them.
func (st *unitState) extract() {
	for _, n := range st.u.nodes {
		st.sums[n.ID] = &Summary{}
	}
	for _, n := range st.u.nodes {
		st.extractNode(n)
	}
	for _, s := range st.sums {
		if len(s.MutatesGlobals) > 0 {
			s.MutatesGlobals = dedupeSorted(s.MutatesGlobals, 64)
		}
	}
}

func dedupeSorted(in []string, cap_ int) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	if len(out) > cap_ {
		out = out[:cap_]
	}
	return out
}

// exclusiveOnlySim are the sim APIs whose runtime guards panic off the
// exclusive shard (sim.go exclusiveOnly); confined-reachable code calling
// one is a contract violation caught before it runs.
var exclusiveOnlySim = map[string]bool{
	"Rand": true, "Spawn": true, "SpawnOn": true, "After": true, "Stop": true,
}

// unshardedMetrics maps the contended metrics mutators to their
// slot-sharded replacements (DESIGN.md §13).
var unshardedMetrics = map[string]string{
	"Counter.Inc":    "Counter.IncSlot",
	"Counter.Add":    "Counter.AddSlot",
	"Timing.Observe": "Timing.ObserveSlot",
}

// emitMethodNames are the order-sensitive output methods maporder
// recognizes; a call on an escaping receiver makes the function an
// emitter.
var emitMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Emit": true, "emit": true,
}

func (st *unitState) extractNode(n *callgraph.Node) {
	sum := st.sums[n.ID]
	body := n.Body()
	if body == nil {
		return
	}
	fset := st.pkg.Fset

	fact := func(list *[]Fact, pos token.Pos, what string) {
		*list = append(*list, Fact{Pos: fset.Position(pos), What: what})
	}

	inspectShallow(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range nd.Results {
				k := st.kindOf(r)
				sum.ReturnTaint |= k & SourceMask
				st.markerFold(k, func(o markerOwner) {
					if o.node == n.ID {
						sum.ReturnFromParams |= 1 << o.param
					}
				})
			}
		case *ast.AssignStmt:
			st.extractAssign(n, sum, nd, fact)
		case *ast.IncDecStmt:
			st.extractWrite(n, sum, nd.X, false, fact, nd.Pos())
		case *ast.SendStmt:
			fact(&sum.Concurrency, nd.Pos(), "channel send (cross-shard traffic must use sim.Mailbox)")
			sum.Emits = true
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				fact(&sum.Concurrency, nd.Pos(), "channel receive (cross-shard traffic must use sim.Mailbox)")
			}
		case *ast.GoStmt:
			fact(&sum.Concurrency, nd.Pos(), "raw go statement (activities must be spawned through sim)")
		case *ast.SelectStmt:
			fact(&sum.Concurrency, nd.Pos(), "select statement (raw channel scheduling outside sim)")
		case *ast.CallExpr:
			st.extractCall(n, sum, nd, fact)
		case *ast.RangeStmt:
			st.extractRange(n, sum, nd)
		}
		return true
	})
}

// markerFold visits the owners of every marker bit set in k.
func (st *unitState) markerFold(k Kind, f func(markerOwner)) {
	for bit := 0; bit < len(st.markers); bit++ {
		if k&paramMark(bit) != 0 {
			f(st.markers[bit])
		}
	}
}

// extractAssign handles writes: global mutation, param mutation, and
// order-sensitive emission (append/string-concat into escaping state).
func (st *unitState) extractAssign(n *callgraph.Node, sum *Summary, a *ast.AssignStmt, fact func(*[]Fact, token.Pos, string)) {
	if a.Tok == token.DEFINE {
		return
	}
	for i, lhs := range a.Lhs {
		compound := !isIdent(lhs)
		st.extractWrite(n, sum, lhs, compound, fact, a.Pos())
		// Emission: x = append(x, ...) or s += ... into escaping state.
		if i < len(a.Rhs) {
			rhs := a.Rhs[i]
			isAppend := false
			if c, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
					if b, ok := st.info().Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						isAppend = true
					}
				}
			}
			isConcat := a.Tok == token.ADD_ASSIGN && isStringType(st.info(), lhs)
			if (isAppend || isConcat) && st.escaping(n, baseObj(st.info(), lhs)) {
				sum.Emits = true
			}
		}
	}
}

func isIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// extractWrite classifies one lvalue write. Plain-ident writes to locals
// and params rebind a copy and are ignored; compound writes through a
// reference-like base escape to whoever shares the base.
func (st *unitState) extractWrite(n *callgraph.Node, sum *Summary, lhs ast.Expr, compound bool, fact func(*[]Fact, token.Pos, string), pos token.Pos) {
	obj := baseObj(st.info(), lhs)
	if obj == nil {
		return
	}
	if isGlobalVar(obj) {
		name := globalName(obj)
		fact(&sum.GlobalWrites, pos, "writes package-level "+name)
		sum.MutatesGlobals = append(sum.MutatesGlobals, name)
		return
	}
	if !compound && isIdent(lhs) {
		return // rebinding a local name
	}
	if owner, idx, ok := st.paramOf(obj); ok && refLike(obj.Type()) {
		if s := st.sums[owner]; s != nil {
			s.MutatesParams |= 1 << idx
		}
		_ = n
	}
}

func isGlobalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func globalName(obj types.Object) string {
	return obj.Pkg().Path() + "." + obj.Name()
}

// paramOf finds which unit node owns obj as a parameter, and its index.
func (st *unitState) paramOf(obj types.Object) (callgraph.FuncID, int, bool) {
	for id, ps := range st.params {
		for i, p := range ps {
			if p == obj {
				return id, i, true
			}
		}
	}
	return "", 0, false
}

// refLike: writes through this type are visible to whoever shares it.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// escaping: mutating state rooted at obj is visible outside node n — the
// base is declared outside n, is package-level, or is a reference-like
// parameter of n.
func (st *unitState) escaping(n *callgraph.Node, obj types.Object) bool {
	if obj == nil {
		return true // derived from a call or unresolvable: be conservative
	}
	if isGlobalVar(obj) {
		return true
	}
	if _, _, isParam := st.paramOf(obj); isParam {
		return refLike(obj.Type())
	}
	start, end := n.Extent()
	return obj.Pos() < start || obj.Pos() > end
}

func (st *unitState) extractCall(n *callgraph.Node, sum *Summary, call *ast.CallExpr, fact func(*[]Fact, token.Pos, string)) {
	info := st.info()

	// close() on a channel is raw concurrency.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			fact(&sum.Concurrency, call.Pos(), "close on raw channel")
			return
		}
	}

	fn := lint.FuncObjOf(info, call)
	if fn != nil {
		// Exclusive-only sim API (runtime exclusiveOnly guards).
		for name := range exclusiveOnlySim {
			if fn.Name() == name && lint.IsMethod(fn, simPkg, "Simulation", name) {
				fact(&sum.BannedCalls, call.Pos(),
					"sim.Simulation."+name+" is exclusive-only (panics on a confined shard)")
			}
		}
		if lint.IsMethod(fn, simPkg, "Mailbox", "Close") {
			fact(&sum.BannedCalls, call.Pos(), "sim.Mailbox.Close is exclusive-only")
		}
		if lint.IsMethod(fn, simPkg, "Env", "Rand") {
			fact(&sum.BannedCalls, call.Pos(),
				"sim.Env.Rand is banned on confined shards (use Env.LocalRand)")
		}
		// Unsharded metrics mutators.
		for m, repl := range unshardedMetrics {
			typ, meth, _ := strings.Cut(m, ".")
			if lint.IsMethod(fn, metricsPkg, typ, meth) {
				fact(&sum.UnshardedMetrics, call.Pos(),
					"metrics."+m+" contends across shards (use "+repl+" with sim.WorkerSlot)")
			}
		}
		if lint.IsMethod(fn, metricsPkg, "Gauge", "Set") || lint.IsMethod(fn, metricsPkg, "Gauge", "Add") {
			fact(&sum.UnshardedMetrics, call.Pos(),
				"metrics.Gauge."+fn.Name()+" is deliberately unsharded; gauges must be driven from the exclusive shard")
		}
		// Output emission.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
			sum.Emits = true
			st.sinkArgs(n, sum, call, call.Args, ^uint64(0), "fmt."+fn.Name())
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			sum.Emits = true
			st.sinkArgs(n, sum, call, call.Args[1:], ^uint64(0), "fmt."+fn.Name())
		}
		// Sink methods (Write/Emit/...) on escaping receivers.
		if emitMethodNames[fn.Name()] {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && info.Selections[sel] != nil {
				if st.escaping(n, baseObj(info, sel.X)) {
					sum.Emits = true
				}
			}
		}
	}

	// Resolved callees: sinks, mutation, emission via summaries.
	args := effectiveArgs(info, call)
	for _, id := range st.t.Graph.ResolveFuncExpr(st.pkg, call.Fun) {
		s := st.t.SummaryFor(id)
		if s == nil {
			continue
		}
		if s.SinkParams != 0 {
			// A modeled callee IS the sink; a computed one passes the
			// value along to a sink somewhere below it.
			sink := "via " + shortID(id)
			if _, isModel := models[id]; isModel {
				sink = shortID(id)
			}
			st.sinkArgsAt(n, sum, call, args, s.SinkParams, sink)
		}
		if s.MutatesParams != 0 {
			for i := 0; i < len(args) && i < 64; i++ {
				if s.MutatesParams&(1<<i) == 0 {
					continue
				}
				obj := baseObj(info, args[i])
				if obj == nil {
					continue
				}
				if isGlobalVar(obj) {
					name := globalName(obj)
					fact(&sum.GlobalWrites, call.Pos(), "passes package-level "+name+" to mutating "+shortID(id))
					sum.MutatesGlobals = append(sum.MutatesGlobals, name)
				} else if owner, idx, ok := st.paramOf(obj); ok && refLike(obj.Type()) {
					if os := st.sums[owner]; os != nil {
						os.MutatesParams |= 1 << idx
					}
				}
			}
		}
		if len(s.MutatesGlobals) > 0 {
			sum.MutatesGlobals = append(sum.MutatesGlobals, s.MutatesGlobals...)
		}
		if s.Emits {
			sum.Emits = true
		}
	}
}

// sinkArgsAt records tainted values reaching the sink-positions of a
// callee, and propagates "my param reaches a sink" facts to param owners.
func (st *unitState) sinkArgsAt(n *callgraph.Node, sum *Summary, call *ast.CallExpr, args []ast.Expr, sinkBits uint64, sink string) {
	for i := 0; i < len(args) && i < 64; i++ {
		if sinkBits&(1<<i) == 0 {
			continue
		}
		st.sinkOne(n, sum, call, args[i], sink)
	}
}

// sinkArgs treats every listed argument as sink-reaching (variadic output
// calls like fmt.Println).
func (st *unitState) sinkArgs(n *callgraph.Node, sum *Summary, call *ast.CallExpr, args []ast.Expr, _ uint64, sink string) {
	for _, a := range args {
		st.sinkOne(n, sum, call, a, sink)
	}
}

func (st *unitState) sinkOne(n *callgraph.Node, sum *Summary, call *ast.CallExpr, arg ast.Expr, sink string) {
	k := st.kindOf(arg)
	if srcs := k & SourceMask; srcs != 0 {
		sum.SinkHits = append(sum.SinkHits, SinkHit{
			Pos:   st.pkg.Fset.Position(call.Pos()),
			Kinds: srcs,
			Sink:  sink,
		})
	}
	st.markerFold(k, func(o markerOwner) {
		if s := st.sums[o.node]; s != nil {
			s.SinkParams |= 1 << o.param
		}
	})
}

// extractRange records interprocedural maporder hits: calls inside a
// map-range body to callees whose summaries emit order-sensitively, with
// no later sort to forgive them.
func (st *unitState) extractRange(n *callgraph.Node, sum *Summary, rng *ast.RangeStmt) {
	tv, ok := st.info().Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if st.sortAfter(rng.End()) {
		return
	}
	ast.Inspect(rng.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, id := range st.t.Graph.ResolveFuncExpr(st.pkg, call.Fun) {
			if _, isModel := models[id]; isModel {
				continue // direct trusted sinks are the intra analyzer's turf
			}
			s := st.t.SummaryFor(id)
			if s != nil && s.Emits {
				sum.RangeEmitHits = append(sum.RangeEmitHits, RangeEmitHit{
					Pos:    st.pkg.Fset.Position(call.Pos()),
					Callee: id,
				})
			}
		}
		return true
	})
}

func (st *unitState) sortAfter(pos token.Pos) bool {
	for _, p := range st.sortPos {
		if p > pos {
			return true
		}
	}
	return false
}

// shortID trims the import-path directory from a FuncID for messages:
// "sprite/internal/sim.(Env).Emit" -> "sim.(Env).Emit".
func shortID(id callgraph.FuncID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// inspectShallow walks n without descending into nested function literals
// (they are separate graph nodes with their own facts).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return fn(m) && false
		}
		return fn(m)
	})
}
