package dataflow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/load"
)

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, &types.Error{Msg: "test importer: unknown package " + path}
}

func checkPkg(t *testing.T, fset *token.FileSet, imp mapImporter, path, src string) *load.Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+"/a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	pkg := &load.Package{ImportPath: path, Fset: fset, Files: []*ast.File{f}}
	pkg.Types, pkg.Info = load.Check(fset, path, []*ast.File{f}, imp, &pkg.TypeErrors)
	for _, e := range pkg.TypeErrors {
		t.Fatalf("type error in %s: %v", path, e)
	}
	imp[path] = pkg.Types
	return pkg
}

// fakeTime stands in for the real time package: same import path and
// names, so the source classification fires without stdlib export data.
const fakeTime = `package time

type Time struct{ ns int64 }
type Duration int64

func Now() Time                  { return Time{} }
func Since(t Time) Duration      { return 0 }
func (t Time) UnixNano() int64   { return t.ns }
func (t Time) String() string    { return string(rune(t.ns)) }
func (d Duration) String() string { return string(rune(d)) }
`

// fakeSim mirrors the sim API surface the models table classifies.
const fakeSim = `package sim

type Rand struct{}
func (*Rand) Intn(n int) int { return 0 }

type Env struct{}
type Simulation struct{}

func (*Env) Emit(kind, detail string)                                   {}
func (*Env) Rand() *Rand                                                { return nil }
func (*Env) LocalRand() *Rand                                           { return nil }
func (*Env) Spawn(name string, fn func(*Env) error)                     {}
func (*Env) SpawnOn(shard int, name string, fn func(*Env) error)        {}
func (*Simulation) SpawnOn(shard int, name string, fn func(*Env) error) {}
func (*Simulation) Rand() *Rand                                         { return nil }
`

func analyzeSrc(t *testing.T, src string) *Tree {
	t.Helper()
	fset := token.NewFileSet()
	imp := mapImporter{}
	tm := checkPkg(t, fset, imp, "time", fakeTime)
	sim := checkPkg(t, fset, imp, "sprite/internal/sim", fakeSim)
	p := checkPkg(t, fset, imp, "p", src)
	return Analyze([]*load.Package{tm, sim, p}, Options{})
}

// TestRecursiveConvergence pins the satellite requirement: summaries on a
// mutually recursive cycle converge (taint circulates around the cycle
// until the fixpoint) and the pass terminates.
func TestRecursiveConvergence(t *testing.T) {
	tree := analyzeSrc(t, `package p

import "time"

func source() int64 { return time.Now().UnixNano() }

func a(n int) int64 {
	if n == 0 {
		return source()
	}
	return b(n - 1)
}

func b(n int) int64 { return a(n - 1) }
`)
	for _, fn := range []callgraph.FuncID{"p.source", "p.a", "p.b"} {
		s := tree.Sums[fn]
		if s == nil {
			t.Fatalf("no summary for %s", fn)
		}
		if s.ReturnTaint&KWalltime == 0 {
			t.Errorf("%s: wall-clock taint should circulate the cycle, got %v", fn, s.ReturnTaint)
		}
	}
	// The clean parameter must not be blamed: n does not flow to returns
	// as taint, only the source does.
	if tree.Sums["p.b"].ReturnFromParams&1 == 0 {
		t.Errorf("b's return derives from its param (passed into the cycle): %b", tree.Sums["p.b"].ReturnFromParams)
	}
}

func TestSinkParamAndInterproceduralHit(t *testing.T) {
	tree := analyzeSrc(t, `package p

import (
	sim "sprite/internal/sim"
	"time"
)

func logIt(env *sim.Env, s string) { env.Emit("k", s) }

func now() string { return time.Now().String() }

func caller(env *sim.Env) { logIt(env, now()) }
`)
	// logIt's param 1 (env is 0) reaches Env.Emit.
	if s := tree.Sums["p.logIt"]; s == nil || s.SinkParams&(1<<1) == 0 {
		t.Fatalf("logIt should report SinkParams bit 1, got %+v", tree.Sums["p.logIt"])
	}
	// caller passes a wall-clock-derived string into it: one hit, one hop
	// away from the source, invisible to any per-function analyzer.
	s := tree.Sums["p.caller"]
	if s == nil || len(s.SinkHits) != 1 {
		t.Fatalf("caller should have 1 sink hit, got %+v", s)
	}
	if s.SinkHits[0].Kinds&KWalltime == 0 {
		t.Errorf("hit should carry wall-clock taint: %+v", s.SinkHits[0])
	}
}

func TestMapOrderSortForgiveness(t *testing.T) {
	tree := analyzeSrc(t, `package p

func sortStrings(s []string) {}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if s := tree.Sums["p.keysUnsorted"]; s == nil || s.ReturnTaint&KMapOrder == 0 {
		t.Errorf("unsorted keys must carry map-order taint: %+v", s)
	}
	if s := tree.Sums["p.keysSorted"]; s != nil && s.ReturnTaint&KMapOrder != 0 {
		t.Errorf("a later sort forgives map-order taint: %+v", s)
	}
}

func TestMutationsEmitsAndRangeHits(t *testing.T) {
	tree := analyzeSrc(t, `package p

import sim "sprite/internal/sim"

var registry = map[string]int{}

func poke() { registry["x"] = 1 }

func record(out *[]string, s string) { *out = append(*out, s) }

func helperEmit(env *sim.Env, s string) { env.Emit("k", s) }

func useRange(m map[string]string, env *sim.Env) {
	for k := range m {
		helperEmit(env, k)
	}
}
`)
	if s := tree.Sums["p.poke"]; s == nil || len(s.MutatesGlobals) != 1 || s.MutatesGlobals[0] != "p.registry" {
		t.Errorf("poke should mutate p.registry: %+v", s)
	}
	if s := tree.Sums["p.record"]; s == nil || s.MutatesParams&1 == 0 || !s.Emits {
		t.Errorf("record mutates param 0 and emits: %+v", s)
	}
	s := tree.Sums["p.useRange"]
	if s == nil || len(s.RangeEmitHits) != 1 || s.RangeEmitHits[0].Callee != "p.helperEmit" {
		t.Errorf("map-range calling an emitter is the interprocedural maporder hit: %+v", s)
	}
	// The map key reaching Emit through helperEmit is also a taint hit.
	found := false
	for _, h := range s.SinkHits {
		if h.Kinds&KMapOrder != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("map-order key flowing into Emit via helper should hit: %+v", s.SinkHits)
	}
}

func TestConfinedReachabilityAndFacts(t *testing.T) {
	tree := analyzeSrc(t, `package p

import sim "sprite/internal/sim"

func confinedBody(env *sim.Env) error {
	helper(env)
	return nil
}

func helper(env *sim.Env) { deep(env) }

func deep(env *sim.Env) { _ = env.Rand() }

func boot(s *sim.Simulation, shard int) {
	s.SpawnOn(shard, "x", confinedBody)
}
`)
	reach := tree.ConfinedReachable()
	ch := reach["p.deep"]
	if ch == nil {
		t.Fatalf("deep should be confined-reachable; reach=%v", keys(reach))
	}
	wantPath := []callgraph.FuncID{"p.confinedBody", "p.helper", "p.deep"}
	if len(ch.Path) != len(wantPath) {
		t.Fatalf("chain %v, want %v", ch.Path, wantPath)
	}
	for i := range wantPath {
		if ch.Path[i] != wantPath[i] {
			t.Fatalf("chain %v, want %v", ch.Path, wantPath)
		}
	}
	s := tree.Sums["p.deep"]
	if s == nil || len(s.BannedCalls) != 1 {
		t.Fatalf("deep calls Env.Rand (banned confined): %+v", s)
	}
}

func keys[K comparable, V any](m map[K]V) []string {
	var out []string
	for k := range m {
		out = append(out, fmt.Sprint(k))
	}
	sort.Strings(out)
	return out
}
