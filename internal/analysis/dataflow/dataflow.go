// Package dataflow computes bottom-up per-function summaries over the
// SCC-condensed call graph (internal/analysis/callgraph) and exposes them
// to the interprocedural analyzers (simtaint, confine, sharded) as a Tree.
//
// The engine is deliberately modest (DESIGN.md §16): flow- and
// path-insensitive, one taint environment per top-level declaration
// (nested literals share their parent's environment, so captured-variable
// taint propagates lexically), with a small bit-lattice per value:
//
//	bits 0..7   taint sources — wall clock, global rand, map order
//	bits 8..63  parameter markers: "this value derives from param i"
//
// A function's Summary says what callers need and nothing more: the taint
// its return values carry, which parameters flow to its returns, which
// parameters reach a determinism-sensitive sink (trace emission, metrics
// values), which parameters and package-level variables it mutates, and
// whether it performs order-sensitive emission (the interprocedural half
// of the maporder contract). Everything is monotone over a finite
// lattice, so the bottom-up pass — components in the condensation's
// reverse topological order, iterating inside recursive components —
// terminates; TestRecursiveConvergence pins that.
//
// Local contract facts (banned sim API calls, raw concurrency, global
// writes, unsharded metrics mutators, tainted sink hits) are recorded per
// node with stable file:line positions so they can be cached per package
// and replayed without re-analysis; confine and sharded join them against
// confined reachability, simtaint against file exemptions.
package dataflow

import (
	"go/token"
	"reflect"
	"sort"
	"strings"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
)

// Kind is the taint lattice: source bits plus parameter markers.
type Kind uint64

const (
	KWalltime   Kind = 1 << 0 // derived from the wall clock (time.Now, ...)
	KGlobalRand Kind = 1 << 1 // derived from package-level math/rand state
	KMapOrder   Kind = 1 << 2 // derived from map iteration order

	// SourceMask selects the source bits.
	SourceMask Kind = 0xFF

	// markerShift is the first parameter-marker bit; markers above
	// maxMarkers params are dropped (conservative: no flow info).
	markerShift = 8
	maxMarkers  = 56
)

// SourceString names the source bits for diagnostics.
func (k Kind) SourceString() string {
	var parts []string
	if k&KWalltime != 0 {
		parts = append(parts, "wall-clock")
	}
	if k&KGlobalRand != 0 {
		parts = append(parts, "global-rand")
	}
	if k&KMapOrder != 0 {
		parts = append(parts, "map-order")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, "+")
}

func paramMark(i int) Kind {
	if i < 0 || i >= maxMarkers {
		return 0
	}
	return 1 << (markerShift + i)
}

// Fact is one position-stamped local observation, cacheable across runs.
type Fact struct {
	Pos  token.Position `json:"pos"`
	What string         `json:"what"`
}

// SinkHit is a tainted value reaching a determinism-sensitive sink.
type SinkHit struct {
	Pos   token.Position `json:"pos"`
	Kinds Kind           `json:"kinds"` // source bits that arrived
	Sink  string         `json:"sink"`  // what it reached ("Env.Emit", "via q.helper", ...)
}

// RangeEmitHit is a call, inside a map-range body, to a function whose
// summary says it emits order-sensitively — the interprocedural maporder
// violation the per-function analyzer cannot see.
type RangeEmitHit struct {
	Pos    token.Position    `json:"pos"`
	Callee callgraph.FuncID  `json:"callee"`
}

// Summary is what callers may rely on about one function.
type Summary struct {
	// ReturnTaint are source bits every caller receives.
	ReturnTaint Kind `json:"return_taint,omitempty"`
	// ReturnFromParams: bit i set = param i's taint flows to the return.
	// Param numbering includes the receiver first, when there is one.
	ReturnFromParams uint64 `json:"return_from_params,omitempty"`
	// SinkParams: bit i set = param i reaches a determinism-sensitive
	// sink inside this function or a callee.
	SinkParams uint64 `json:"sink_params,omitempty"`
	// MutatesParams: bit i set = param i's pointee is written here or in
	// a callee it is passed to.
	MutatesParams uint64 `json:"mutates_params,omitempty"`
	// MutatesGlobals are package-level variables written, transitively
	// ("pkgpath.name", sorted, capped).
	MutatesGlobals []string `json:"mutates_globals,omitempty"`
	// Emits: the function performs order-sensitive emission (output,
	// trace, append/send to caller-visible state), directly or via a
	// callee — calling it once per map-range iteration emits in map
	// order.
	Emits bool `json:"emits,omitempty"`

	// Local facts (this node's own body, literals excluded — they carry
	// their own), joined against reachability by confine/sharded.
	BannedCalls      []Fact `json:"banned_calls,omitempty"`
	Concurrency      []Fact `json:"concurrency,omitempty"`
	GlobalWrites     []Fact `json:"global_writes,omitempty"`
	UnshardedMetrics []Fact `json:"unsharded_metrics,omitempty"`

	// SinkHits and RangeEmitHits are the simtaint raw findings for this
	// node, before file exemptions and suppressions.
	SinkHits      []SinkHit      `json:"sink_hits,omitempty"`
	RangeEmitHits []RangeEmitHit `json:"range_emit_hits,omitempty"`
}

// TreeAnalyzer is a whole-tree analyzer driven by cmd/spritelint.
type TreeAnalyzer struct {
	Name string
	Doc  string
	Run  func(*Tree) ([]lint.Diagnostic, error)
}

// Tree is the analyzed whole program.
type Tree struct {
	Pkgs  []*load.Package
	Graph *callgraph.Graph
	Sums  map[callgraph.FuncID]*Summary

	// CacheHits/CacheMisses count per-package summary cache outcomes.
	CacheHits, CacheMisses int

	pkgOf   map[callgraph.FuncID]*load.Package
	testFns map[callgraph.FuncID]bool
}

const (
	simPkg     = "sprite/internal/sim"
	corePkg    = "sprite/internal/core"
	tracePkg   = "sprite/internal/trace"
	metricsPkg = "sprite/internal/metrics"
	statsPkg   = "sprite/internal/stats"
)

// Trusted reports whether a package's interior is exempt from analysis:
// the simulation substrate and the analysis tooling itself. Their public
// APIs are modeled (models table) instead of analyzed — sim.Mailbox.Send
// mutating its receiver is the mechanism that makes cross-shard traffic
// legal, not a violation of it.
func Trusted(importPath string) bool {
	switch importPath {
	case simPkg, tracePkg, metricsPkg, statsPkg:
		return true
	}
	return strings.HasPrefix(importPath, "sprite/internal/analysis")
}

// models classifies the trusted and stdlib APIs the analyzers care about.
// Param numbering counts the receiver as param 0.
var models = map[callgraph.FuncID]*Summary{
	// Trace emission: the determinism goldens' raw material.
	simPkg + ".(Env).Emit":       {SinkParams: pbits(1, 2), Emits: true},
	tracePkg + ".(Log).Append":   {SinkParams: pbits(1, 2, 3), Emits: true},
	// Metrics values land in Snapshot.Text, which goldens compare.
	metricsPkg + ".(Counter).Add":         {SinkParams: pbits(1)},
	metricsPkg + ".(Counter).AddSlot":     {SinkParams: pbits(2)},
	metricsPkg + ".(Timing).Observe":      {SinkParams: pbits(1)},
	metricsPkg + ".(Timing).ObserveSlot":  {SinkParams: pbits(2)},
	metricsPkg + ".(Gauge).Set":           {SinkParams: pbits(1)},
	metricsPkg + ".(Gauge).Add":           {SinkParams: pbits(1)},
	// Deterministic clocks/randomness: returns are clean.
	simPkg + ".(Env).Now":       {},
	simPkg + ".(Env).Rand":      {},
	simPkg + ".(Env).LocalRand": {},
	// Stdlib map-order sources.
	"maps.Keys":   {ReturnTaint: KMapOrder},
	"maps.Values": {ReturnTaint: KMapOrder},
	"reflect.(Value).MapKeys": {ReturnTaint: KMapOrder},
}

func pbits(is ...int) uint64 {
	var b uint64
	for _, i := range is {
		b |= 1 << i
	}
	return b
}

// Options configures Analyze.
type Options struct {
	// Cache, when non-nil, loads/stores per-package summaries.
	Cache *Cache
}

// Analyze builds the call graph and computes summaries bottom-up.
func Analyze(pkgs []*load.Package, opts Options) *Tree {
	t := &Tree{
		Pkgs:    pkgs,
		Graph:   callgraph.Build(pkgs),
		Sums:    make(map[callgraph.FuncID]*Summary),
		pkgOf:   make(map[callgraph.FuncID]*load.Package),
		testFns: make(map[callgraph.FuncID]bool),
	}
	for id, n := range t.Graph.Nodes {
		t.pkgOf[id] = n.Pkg
		pos, _ := n.Extent()
		if strings.HasSuffix(n.Pkg.Fset.Position(pos).Filename, "_test.go") {
			t.testFns[id] = true
		}
	}

	// Per-package cache: a hit ships the package's summaries wholesale
	// and removes its units from the fixpoint.
	cached := make(map[string]bool)
	if opts.Cache != nil {
		for _, pkg := range pkgs {
			if Trusted(pkg.ImportPath) {
				continue
			}
			if sums, ok := opts.Cache.Load(pkg, pkgs); ok {
				for id, s := range sums {
					t.Sums[id] = s
				}
				cached[pkg.ImportPath] = true
				t.CacheHits++
			} else {
				t.CacheMisses++
			}
		}
	}

	// Units: one per top-level declaration (plus orphan literals from
	// package-level initializers), skipping trusted packages, test files,
	// and cached packages. Ordered callees-first by the condensation so
	// one pass settles non-recursive code.
	units := t.collectUnits(cached)
	order := t.unitOrder(units)

	for round := 0; round < 32; round++ {
		changed := false
		for _, u := range order {
			for _, upd := range t.analyzeUnit(units[u]) {
				old := t.Sums[upd.id]
				if old == nil || !reflect.DeepEqual(old, upd.sum) {
					t.Sums[upd.id] = upd.sum
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	if opts.Cache != nil {
		for _, pkg := range pkgs {
			if Trusted(pkg.ImportPath) || cached[pkg.ImportPath] {
				continue
			}
			sums := make(map[callgraph.FuncID]*Summary)
			for id, s := range t.Sums {
				if t.pkgOf[id] == pkg {
					sums[id] = s
				}
			}
			opts.Cache.Store(pkg, pkgs, sums)
		}
	}
	return t
}

// PkgOf returns the package a function belongs to (nil for cached-only
// or external IDs).
func (t *Tree) PkgOf(id callgraph.FuncID) *load.Package { return t.pkgOf[id] }

// InTestFile reports whether the function's source lives in a _test.go.
func (t *Tree) InTestFile(id callgraph.FuncID) bool { return t.testFns[id] }

// SummaryFor resolves a callee's summary: models first (the trusted API
// surface), then computed/cached summaries. Nil means unknown — callers
// must be conservative.
func (t *Tree) SummaryFor(id callgraph.FuncID) *Summary {
	if m, ok := models[id]; ok {
		return m
	}
	return t.Sums[id]
}

// unitRoot is one top-level declaration plus its enclosed literals.
type unitRoot struct {
	root  *callgraph.Node
	nodes []*callgraph.Node // root first, then literals, source order
}

func (t *Tree) collectUnits(cachedPkgs map[string]bool) map[callgraph.FuncID]*unitRoot {
	ids := make([]string, 0, len(t.Graph.Nodes))
	for id := range t.Graph.Nodes {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	units := make(map[callgraph.FuncID]*unitRoot)
	for _, s := range ids {
		id := callgraph.FuncID(s)
		n := t.Graph.Nodes[id]
		if Trusted(n.Pkg.ImportPath) || cachedPkgs[n.Pkg.ImportPath] || t.testFns[id] {
			continue
		}
		if n.Decl == nil && !t.orphanLit(id) {
			continue // literal owned by a declaration's unit
		}
		u := &unitRoot{root: n}
		u.nodes = append(u.nodes, n)
		t.addEnclosed(n, &u.nodes)
		units[id] = u
	}
	return units
}

// orphanLit: a literal whose parent ID is not a node (package-level var
// initializer literals, "pkg.init#file$1") roots its own unit.
func (t *Tree) orphanLit(id callgraph.FuncID) bool {
	i := strings.LastIndexByte(string(id), '$')
	if i < 0 {
		return true
	}
	_, ok := t.Graph.Nodes[callgraph.FuncID(string(id)[:i])]
	return !ok
}

func (t *Tree) addEnclosed(n *callgraph.Node, out *[]*callgraph.Node) {
	for _, e := range n.Out {
		if e.Kind != callgraph.Encloses {
			continue
		}
		if c := t.Graph.Nodes[e.Callee]; c != nil {
			*out = append(*out, c)
			t.addEnclosed(c, out)
		}
	}
}

// unitOrder sorts unit roots callees-first using the SCC condensation.
func (t *Tree) unitOrder(units map[callgraph.FuncID]*unitRoot) []callgraph.FuncID {
	sccs := t.Graph.Condense()
	rank := make(map[callgraph.FuncID]int)
	for i, s := range sccs {
		for _, f := range s.Funcs {
			rank[f] = i
		}
	}
	ids := make([]callgraph.FuncID, 0, len(units))
	for id := range units {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, rj := rank[ids[i]], rank[ids[j]]
		if ri != rj {
			return ri < rj
		}
		return ids[i] < ids[j]
	})
	return ids
}
