package dataflow

import (
	"sort"
	"strings"

	"sprite/internal/analysis/callgraph"
)

// Chain explains why a function is confined-reachable: the spawn root and
// the call path from the root's body to the function.
type Chain struct {
	Root callgraph.Root
	// Path runs from the root body to the function, inclusive.
	Path []callgraph.FuncID
}

// String renders the chain for diagnostics, rooted at the spawn point:
// "BootOn -> core.(Kernel).runProcess -> core.(Kernel).exitNotify".
func (c *Chain) String() string {
	parts := []string{c.Root.Via}
	for _, id := range c.Path {
		parts = append(parts, shortID(id))
	}
	return strings.Join(parts, " -> ")
}

// ConfinedReachable returns every non-trusted, non-test function
// transitively reachable from a confined spawn root, with a shortest
// witness chain. Traversal follows direct calls, value references
// (conservative: a func value handed around confined code is assumed to
// run there), enclosed literals, and same-shard spawns; explicit-shard
// spawns (Spawn edges) start their own roots and are not traversed.
func (t *Tree) ConfinedReachable() map[callgraph.FuncID]*Chain {
	reach := make(map[callgraph.FuncID]*Chain)
	var queue []callgraph.FuncID

	visitable := func(id callgraph.FuncID) bool {
		n := t.Graph.Nodes[id]
		if n == nil {
			return false // external or trusted-pkg body: not analyzed
		}
		if Trusted(n.Pkg.ImportPath) || t.testFns[id] {
			return false
		}
		return true
	}

	for _, r := range t.Graph.Roots {
		if r.Kind != callgraph.ConfinedRoot {
			continue
		}
		// Spawns made from test code exercise the runtime contract
		// deliberately; the static contract covers production spawns.
		if strings.HasSuffix(t.Graph.Fset.Position(r.Site).Filename, "_test.go") {
			continue
		}
		if !visitable(r.Body) {
			continue
		}
		if reach[r.Body] == nil {
			root := r
			reach[r.Body] = &Chain{Root: root, Path: []callgraph.FuncID{r.Body}}
			queue = append(queue, r.Body)
		}
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		cur := reach[id]
		n := t.Graph.Nodes[id]
		// Deterministic expansion order.
		edges := append([]callgraph.Edge(nil), n.Out...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].Callee < edges[j].Callee })
		for _, e := range edges {
			switch e.Kind {
			case callgraph.Call, callgraph.Ref, callgraph.Encloses, callgraph.SpawnSame:
			default:
				continue
			}
			if !visitable(e.Callee) || reach[e.Callee] != nil {
				continue
			}
			path := make([]callgraph.FuncID, len(cur.Path)+1)
			copy(path, cur.Path)
			path[len(cur.Path)] = e.Callee
			reach[e.Callee] = &Chain{Root: cur.Root, Path: path}
			queue = append(queue, e.Callee)
		}
	}
	return reach
}
