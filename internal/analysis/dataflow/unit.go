package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/load"
	"sprite/internal/analysis/walltime"
)

// update is one node's freshly computed summary.
type update struct {
	id  callgraph.FuncID
	sum *Summary
}

// markerOwner maps a parameter-marker bit back to the node and parameter
// index that owns it.
type markerOwner struct {
	node  callgraph.FuncID
	param int
}

// unitState is the shared flow-insensitive environment for one top-level
// declaration and all literals lexically inside it. Sharing the taint map
// across the unit is what makes captured-variable taint work: a literal
// reading a tainted variable of its parent sees the parent's bits.
type unitState struct {
	t   *Tree
	u   *unitRoot
	pkg *load.Package

	taint   map[types.Object]Kind
	sorted  map[types.Object]bool
	params  map[callgraph.FuncID][]types.Object
	markers []markerOwner // index = marker bit - markerShift
	markOf  map[types.Object]int

	sortPos []token.Pos // positions of sort-family calls, unit-wide

	sums map[callgraph.FuncID]*Summary
}

func (t *Tree) analyzeUnit(u *unitRoot) []update {
	st := &unitState{
		t:      t,
		u:      u,
		pkg:    u.root.Pkg,
		taint:  make(map[types.Object]Kind),
		sorted: make(map[types.Object]bool),
		params: make(map[callgraph.FuncID][]types.Object),
		markOf: make(map[types.Object]int),
		sums:   make(map[callgraph.FuncID]*Summary),
	}
	st.collectParams()
	st.collectSorted()
	st.propagate()
	st.extract()

	out := make([]update, 0, len(u.nodes))
	for _, n := range u.nodes {
		out = append(out, update{id: n.ID, sum: st.sums[n.ID]})
	}
	return out
}

func (st *unitState) info() *types.Info { return st.pkg.Info }

// collectParams assigns each node's parameters (receiver first) their
// marker bits, unit-wide.
func (st *unitState) collectParams() {
	for _, n := range st.u.nodes {
		var objs []types.Object
		add := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if obj := st.info().Defs[name]; obj != nil {
						objs = append(objs, obj)
					}
				}
			}
		}
		if n.Decl != nil {
			add(n.Decl.Recv)
		}
		add(n.FuncType().Params)
		st.params[n.ID] = objs
		for i, obj := range objs {
			bit := len(st.markers)
			if bit >= maxMarkers {
				continue // conservative: no flow info for this param
			}
			st.markers = append(st.markers, markerOwner{node: n.ID, param: i})
			st.markOf[obj] = bit
			st.taint[obj] |= paramMark(bit)
		}
	}
}

// collectSorted records objects passed to sort-family calls anywhere in
// the unit, plus the call positions (the maporder "later sort forgives"
// heuristic, applied unit-wide). A sorted object's map-order bit is
// masked on every read.
func (st *unitState) collectSorted() {
	body := st.u.root.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		st.sortPos = append(st.sortPos, call.Pos())
		for _, a := range call.Args {
			if obj := baseObj(st.info(), a); obj != nil {
				st.sorted[obj] = true
			}
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		// Keep the qualifier: sort.Strings must match the "sort"
		// heuristic by its package name, not just the method name.
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// baseObj strips derefs/selectors/indexes down to the root identifier's
// object: the variable whose state an lvalue or argument denotes.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Qualified identifier (pkg.Var): the object is the Sel.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return nil // derived from a call: no stable base
		default:
			return nil
		}
	}
}

// propagate runs the flow-insensitive taint fixpoint over the whole unit
// (deep walk: literals share the environment).
func (st *unitState) propagate() {
	body := st.u.root.Body()
	if body == nil {
		return
	}
	for iter := 0; iter < 32; iter++ {
		changed := false
		bump := func(obj types.Object, k Kind) {
			if obj == nil || k == 0 {
				return
			}
			if st.taint[obj]|k != st.taint[obj] {
				st.taint[obj] |= k
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				st.assign(n, bump)
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						bump(st.info().Defs[name], st.kindOf(n.Values[i]))
					}
				} else if len(n.Values) == 1 {
					k := st.kindOf(n.Values[0])
					for _, name := range n.Names {
						bump(st.info().Defs[name], k)
					}
				}
			case *ast.RangeStmt:
				st.rangeTaint(n, bump)
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (st *unitState) assign(n *ast.AssignStmt, bump func(types.Object, Kind)) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			k := st.kindOf(n.Rhs[i])
			if st.mapIndexWrite(lhs) || st.numericReduction(n, lhs) {
				k &^= KMapOrder
			}
			bump(lhsObj(st.info(), lhs), k)
		}
		return
	}
	if len(n.Rhs) == 1 { // tuple: x, y := f()
		k := st.kindOf(n.Rhs[0])
		for _, lhs := range n.Lhs {
			if st.mapIndexWrite(lhs) {
				k &^= KMapOrder
			}
			bump(lhsObj(st.info(), lhs), k)
		}
	}
}

// numericReduction reports whether the assignment is a commutative
// compound op (+=, -=, *=, |=, &=, ^=, &^=) on a numeric lvalue. Folding
// map values into a numeric accumulator is order-insensitive — the final
// value does not depend on iteration order — so KMapOrder does not
// propagate (the intra maporder analyzer likewise only flags append and
// emission inside range-over-map bodies, never scalar folds). String +=
// is NOT forgiven: concatenation order shows.
func (st *unitState) numericReduction(n *ast.AssignStmt, lhs ast.Expr) bool {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
	default:
		return false
	}
	tv, ok := st.info().Types[lhs]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// mapIndexWrite reports whether lhs is m[k] for a map m. A map insert is
// order-insensitive — the resulting content does not depend on the order
// the keys were written — so KMapOrder does not propagate through it
// (mirroring the intra-function maporder analyzer, which forgives map
// inserts inside range-over-map bodies).
func (st *unitState) mapIndexWrite(lhs ast.Expr) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := st.info().Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// lhsObj is the object an assignment writes: the defined/used ident, or
// the base variable for compound lvalues (v.f = x taints v — containers
// accumulate their elements' taint, flow-insensitively).
func lhsObj(info *types.Info, lhs ast.Expr) types.Object {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return baseObj(info, lhs)
}

func (st *unitState) rangeTaint(n *ast.RangeStmt, bump func(types.Object, Kind)) {
	xk := st.kindOf(n.X)
	over := Kind(0)
	if tv, ok := st.info().Types[n.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			over = KMapOrder
		}
	}
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok {
			obj := st.info().Defs[id]
			if obj == nil {
				obj = st.info().Uses[id]
			}
			bump(obj, (xk&SourceMask)|over)
		}
	}
}

// kindOf evaluates an expression's taint under the current environment.
func (st *unitState) kindOf(e ast.Expr) Kind {
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.info().Uses[e]
		if obj == nil {
			obj = st.info().Defs[e]
		}
		k := st.taint[obj]
		if st.sorted[obj] {
			k &^= KMapOrder
		}
		return k
	case *ast.CallExpr:
		return st.kindOfCall(e)
	case *ast.BinaryExpr:
		return st.kindOf(e.X) | st.kindOf(e.Y)
	case *ast.UnaryExpr:
		return st.kindOf(e.X)
	case *ast.ParenExpr:
		return st.kindOf(e.X)
	case *ast.StarExpr:
		return st.kindOf(e.X)
	case *ast.IndexExpr:
		return st.kindOf(e.X)
	case *ast.SliceExpr:
		return st.kindOf(e.X)
	case *ast.TypeAssertExpr:
		return st.kindOf(e.X)
	case *ast.SelectorExpr:
		// Qualified package var reads stay clean (globals untracked);
		// field reads inherit the container's taint.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := st.info().Uses[id].(*types.PkgName); isPkg {
				return 0
			}
		}
		return st.kindOf(e.X)
	case *ast.CompositeLit:
		var k Kind
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				k |= st.kindOf(kv.Value)
			} else {
				k |= st.kindOf(el)
			}
		}
		return k
	}
	return 0
}

// effectiveArgs is the call's arguments with the receiver prepended for
// method calls, matching Summary's param numbering.
func effectiveArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	args := call.Args
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if info.Selections[sel] != nil {
			return append([]ast.Expr{sel.X}, args...)
		}
	}
	return args
}

func (st *unitState) kindOfCall(call *ast.CallExpr) Kind {
	info := st.info()
	// Type conversion: T(x) keeps x's taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.kindOf(call.Args[0])
		}
		return 0
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				var k Kind
				for _, a := range call.Args {
					k |= st.kindOf(a)
				}
				return k
			case "len", "cap", "make", "new", "delete", "close", "min", "max":
				if b.Name() == "min" || b.Name() == "max" {
					var k Kind
					for _, a := range call.Args {
						k |= st.kindOf(a)
					}
					return k
				}
				return 0
			}
			return 0
		}
	}
	// Explicit sources.
	if fn := lint.FuncObjOf(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if walltime.Banned[fn.Name()] {
				return KWalltime
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() == nil && !randAllowed[fn.Name()] {
				return KGlobalRand
			}
		}
	}
	// Resolved callees with summaries (in-tree or modeled).
	ids := st.t.Graph.ResolveFuncExpr(st.pkg, call.Fun)
	args := effectiveArgs(info, call)
	var k Kind
	resolved := false
	for _, id := range ids {
		s := st.t.SummaryFor(id)
		if s == nil {
			continue
		}
		resolved = true
		k |= s.ReturnTaint
		for i := 0; i < len(args) && i < 64; i++ {
			if s.ReturnFromParams&(1<<i) != 0 {
				k |= st.kindOf(args[i])
			}
		}
	}
	if resolved {
		return k
	}
	// Unmodeled call into a trusted package: the deterministic substrate
	// (sim, trace, metrics, stats) returns clean values by contract — its
	// sinks and sources are enumerated in the models table, everything
	// else neither launders taint in nor leaks nondeterminism out.
	// Without this, every sim.Stats()/metrics lookup would conservatively
	// inherit its receiver's taint and drown the tree in noise.
	if fn := lint.FuncObjOf(info, call); fn != nil && fn.Pkg() != nil && Trusted(fn.Pkg().Path()) {
		return 0
	}
	// Unknown callee (stdlib without a model, dynamic func value,
	// interface method): conservative pass-through of every argument and
	// the callee expression itself.
	for _, a := range args {
		k |= st.kindOf(a)
	}
	k |= st.kindOf(call.Fun)
	return k
}

// randAllowed mirrors globalrand's constructor allowance: deterministic
// seeded generators are fine, ambient package-level state is not.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}
