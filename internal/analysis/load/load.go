// Package load type-checks this module's packages for spritelint without
// golang.org/x/tools/go/packages (the build container has no module proxy).
// It shells out to `go list -deps -test -export -json` for the package
// graph, parses the module's own packages from source, and imports every
// dependency — stdlib included — through the standard library's gc
// importer, fed by the export-data files the go tool just built. The whole
// pipeline is offline: `go list -export` compiles export data into the
// local build cache from the locally installed sources.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analyzable unit: a package's syntax plus its type
// information. For a package with in-package tests, the loader returns the
// test variant (whose file set is a superset of the plain build), so
// analyzers see _test.go files too. External test packages (package
// foo_test) are separate units.
type Package struct {
	// ImportPath is the plain import path ("sprite/internal/core"), with
	// any " [foo.test]" variant suffix stripped.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects non-fatal type-check problems. The tree is
	// expected to compile (make build gates before lint), so these
	// normally stay empty; they are surfaced with -debug.
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ForTest    string
	DepOnly    bool
	Standard   bool
	Incomplete bool
}

// Packages runs `go list` in dir and returns one Package per matched
// import path, test variants folded in, sorted by import path.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	for _, e := range entries {
		if e.Export != "" {
			exports[basePath(e.ImportPath)] = chooseExport(exports[basePath(e.ImportPath)], e)
		}
	}

	// Pick the unit to analyze per base import path: the in-package test
	// variant ("P [P.test]") supersedes the plain package; synthesized
	// ".test" mains are skipped; external test packages ("P_test
	// [P.test]") are their own base path and come along naturally.
	units := make(map[string]listEntry)
	for _, e := range entries {
		if e.DepOnly || e.Standard || strings.HasSuffix(basePath(e.ImportPath), ".test") {
			continue
		}
		base := basePath(e.ImportPath)
		if prev, ok := units[base]; !ok || len(e.GoFiles) > len(prev.GoFiles) {
			units[base] = e
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports, nil)
	var pkgs []*Package
	for _, e := range units {
		p, err := checkEntry(fset, imp, e)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ImportPath, err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// chooseExport prefers the plain (non-test-variant) export data for a
// path, falling back to whatever is available.
func chooseExport(prev string, e listEntry) string {
	if prev != "" && e.ForTest != "" {
		return prev
	}
	return e.Export
}

func checkEntry(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: basePath(e.ImportPath),
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
	}
	pkg.Types, pkg.Info = Check(fset, pkg.ImportPath, files, imp, &pkg.TypeErrors)
	return pkg, nil
}

// Check type-checks one package's files, tolerating errors (the checker
// keeps going and records them in errs).
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, errs *[]error) (*types.Package, *types.Info) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if errs != nil {
				*errs = append(*errs, err)
			}
		},
	}
	tpkg, _ := conf.Check(path, fset, files, info) // errors already collected
	return tpkg, info
}

// basePath strips go list's test-variant suffix:
// "p [p.test]" -> "p".
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func goList(dir string, patterns []string) ([]listEntry, error) {
	args := []string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,ForTest,DepOnly,Standard,Incomplete",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ExportData returns import path -> export-data file for the transitive
// dependency closure of the given import paths (used by the linttest
// fixture harness, whose fixtures import the stdlib).
func ExportData(dir string, paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, e := range entries {
		if e.Export != "" && e.ForTest == "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// Importer resolves imports for the type-checker: source directories first
// (the linttest harness maps fixture import paths to testdata dirs), then
// gc export data produced by `go list -export`.
type Importer struct {
	fset *token.FileSet
	// srcDirs maps an import path to a directory of Go source to
	// type-check on first use (fixture stubs). nil outside tests.
	srcDirs map[string]string
	gc      types.ImporterFrom
	srcPkgs map[string]*types.Package
}

// NewImporter builds an Importer over the given export-data map and
// optional source-stub directories.
func NewImporter(fset *token.FileSet, exports map[string]string, srcDirs map[string]string) *Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &Importer{
		fset:    fset,
		srcDirs: srcDirs,
		gc:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		srcPkgs: make(map[string]*types.Package),
	}
}

// Import implements types.Importer.
func (imp *Importer) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := imp.srcPkgs[path]; ok {
		return pkg, nil
	}
	if dir, ok := imp.srcDirs[path]; ok {
		pkg, err := imp.checkDir(path, dir)
		if err != nil {
			return nil, err
		}
		imp.srcPkgs[path] = pkg
		return pkg, nil
	}
	return imp.gc.Import(path)
}

// checkDir type-checks a fixture stub package from source.
func (imp *Importer) checkDir(path, dir string) (*types.Package, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var errs []error
	pkg, _ := Check(imp.fset, path, files, imp, &errs)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	return pkg, nil
}
