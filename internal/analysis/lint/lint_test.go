package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func suppressorFor(t *testing.T, src string) (*Suppressor, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return NewSuppressor(fset, []*ast.File{f}), fset
}

func diag(file string, line int, analyzer string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line},
		Analyzer: analyzer,
		Message:  "m",
	}
}

// TestSuppressorWrappedStatement is the regression test for allow
// comments above statements that wrap across lines: the allow must cover
// every line of the statement, not just the comment line + 1.
func TestSuppressorWrappedStatement(t *testing.T) {
	s, _ := suppressorFor(t, `package p

import "time"

func f() time.Time {
	//spritelint:allow walltime fixture: wrapped call, fully covered
	x := time.Now().
		Add(
			3,
		)
	y := time.Now()
	_ = y
	return x
}
`)
	// The wrapped assignment spans lines 7-10; the old suppressor only
	// covered 6 and 7.
	for line := 6; line <= 10; line++ {
		if !s.Suppressed(diag("x.go", line, "walltime")) {
			t.Errorf("line %d of the wrapped statement should be suppressed", line)
		}
	}
	// The next statement (line 11) is not covered.
	if s.Suppressed(diag("x.go", 11, "walltime")) {
		t.Errorf("the statement after the wrapped one must not be suppressed")
	}
	// Other analyzers are not covered either.
	if s.Suppressed(diag("x.go", 8, "maporder")) {
		t.Errorf("an unrelated analyzer must not be suppressed")
	}
}

// TestSuppressorCompoundHeaderOnly: an allow above an if-statement covers
// its header, not its whole body.
func TestSuppressorCompoundHeaderOnly(t *testing.T) {
	s, _ := suppressorFor(t, `package p

func f(cond func() bool) int {
	//spritelint:allow maporder fixture: header only
	if cond() &&
		cond() {
		return 1
	}
	return 0
}
`)
	for _, line := range []int{5, 6} {
		if !s.Suppressed(diag("x.go", line, "maporder")) {
			t.Errorf("if header line %d should be suppressed", line)
		}
	}
	if s.Suppressed(diag("x.go", 7, "maporder")) {
		t.Errorf("the if body must not be suppressed by a header allow")
	}
}

// TestSuppressorStale: entries that never fire are reported by Stale, in
// position order; used entries are not.
func TestSuppressorStale(t *testing.T) {
	s, _ := suppressorFor(t, `package p

import "time"

func f() time.Time {
	//spritelint:allow walltime used below
	t0 := time.Now()
	//spritelint:allow maporder,walltime never fires
	_ = t0
	return t0
}
`)
	if !s.Suppressed(diag("x.go", 7, "walltime")) {
		t.Fatalf("first allow should suppress")
	}
	stale := s.Stale()
	if len(stale) != 2 {
		t.Fatalf("want 2 stale entries (maporder+walltime on line 8), got %+v", stale)
	}
	if stale[0].Name != "maporder" || stale[0].Pos.Line != 8 {
		t.Errorf("stale[0] = %+v, want maporder at line 8", stale[0])
	}
	if stale[1].Name != "walltime" || stale[1].Pos.Line != 8 {
		t.Errorf("stale[1] = %+v, want walltime at line 8", stale[1])
	}
}
