// Package lint is the spritelint analyzer framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface this repo needs. The container building this repo has no module
// proxy, so the real x/tools framework is unavailable; the subset here —
// an Analyzer with a Run func over a type-checked package, positional
// diagnostics, and a comment-driven suppression mechanism — is
// API-compatible enough that migrating to the upstream framework later is a
// mechanical change.
//
// The project contracts the analyzers enforce are documented in DESIGN.md
// §11 ("Static contracts").
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked package
// and reports violations through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//spritelint:allow <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check. It may return an analyzer-specific result
	// (e.g. failpointreg returns the set of registered names it saw) that
	// the driver aggregates across packages.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, including in-package _test.go files
	// when the driver loaded the test variant.
	Files []*ast.File
	// Pkg is the type-checked package (path() is the import path the
	// analyzers match against, e.g. "sprite/internal/core").
	Pkg *types.Package
	// TypesInfo resolves identifiers, selections, and expression types.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileFor returns the *ast.File containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Run applies one analyzer to one package and returns its diagnostics
// (suppressions not yet applied — see Suppressor) plus the analyzer's
// aggregate result.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, any, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		diags:     &diags,
	}
	res, err := a.Run(pass)
	return diags, res, err
}

// AllowPrefix introduces a suppression comment. A comment of the form
//
//	//spritelint:allow walltime[,maporder] [rationale...]
//
// suppresses the named analyzers' diagnostics on the comment's own line and
// on the line immediately below it (so both end-of-line and
// standalone-line-above placement work). Suppressions are deliberate,
// visible, and greppable — the policy in DESIGN.md §11 requires a rationale
// after the analyzer list.
const AllowPrefix = "//spritelint:allow"

// Suppressor decides whether a diagnostic is silenced by an allow comment.
type Suppressor struct {
	// file -> line -> analyzer names allowed on that line.
	allowed map[string]map[int]map[string]bool
}

// NewSuppressor scans the files' comments for allow directives.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{allowed: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := fset.Position(c.Pos())
				byLine := s.allowed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					s.allowed[pos.Filename] = byLine
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = make(map[string]bool)
						}
						byLine[line][name] = true
					}
				}
			}
		}
	}
	return s
}

// Suppressed reports whether d is silenced by an allow comment.
func (s *Suppressor) Suppressed(d Diagnostic) bool {
	byLine := s.allowed[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[d.Pos.Line]
	return names != nil && (names[d.Analyzer] || names["all"])
}

// Filter drops suppressed diagnostics and sorts the rest by position.
func (s *Suppressor) Filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !s.Suppressed(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// FuncObjOf resolves a call expression's callee to its *types.Func (methods
// and package-level functions; nil for builtins, conversions, and func
// values).
func FuncObjOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether obj is the package-level function (or method —
// recvName "" matches only package-level) path.name.
func IsPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// IsMethod reports whether fn is a method named name whose receiver's named
// type (after pointer indirection) is path.typeName.
func IsMethod(fn *types.Func, path, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == typeName
}

// ConstString returns the compile-time string value of e, if it has one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
