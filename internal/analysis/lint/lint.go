// Package lint is the spritelint analyzer framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface this repo needs. The container building this repo has no module
// proxy, so the real x/tools framework is unavailable; the subset here —
// an Analyzer with a Run func over a type-checked package, positional
// diagnostics, and a comment-driven suppression mechanism — is
// API-compatible enough that migrating to the upstream framework later is a
// mechanical change.
//
// The project contracts the analyzers enforce are documented in DESIGN.md
// §11 ("Static contracts").
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked package
// and reports violations through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//spritelint:allow <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check. It may return an analyzer-specific result
	// (e.g. failpointreg returns the set of registered names it saw) that
	// the driver aggregates across packages.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, including in-package _test.go files
	// when the driver loaded the test variant.
	Files []*ast.File
	// Pkg is the type-checked package (path() is the import path the
	// analyzers match against, e.g. "sprite/internal/core").
	Pkg *types.Package
	// TypesInfo resolves identifiers, selections, and expression types.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileFor returns the *ast.File containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Run applies one analyzer to one package and returns its diagnostics
// (suppressions not yet applied — see Suppressor) plus the analyzer's
// aggregate result.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, any, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		diags:     &diags,
	}
	res, err := a.Run(pass)
	return diags, res, err
}

// AllowPrefix introduces a suppression comment. A comment of the form
//
//	//spritelint:allow walltime[,maporder] [rationale...]
//
// suppresses the named analyzers' diagnostics on the statement it is
// attached to: the statement (or declaration) starting on the comment's
// own line for end-of-line placement, or on the line immediately below it
// for standalone placement — covering every line of that statement, so a
// call wrapped across lines stays suppressed. Compound statements
// (if/for/switch/select) and function declarations are covered only
// through their headers; an allow above an `if` does not silence its
// whole body. Suppressions are deliberate, visible, and greppable — the
// policy in DESIGN.md §11 requires a rationale after the analyzer list.
const AllowPrefix = "//spritelint:allow"

// allowEntry is one (comment, analyzer-name) suppression, tracked for the
// -deadallow audit: an entry that never suppresses anything is stale.
type allowEntry struct {
	Pos  token.Position // the allow comment itself
	Name string
	used bool
}

// StaleAllow identifies an allow comment entry that suppressed nothing.
type StaleAllow struct {
	Pos  token.Position
	Name string
}

// Suppressor decides whether a diagnostic is silenced by an allow comment.
type Suppressor struct {
	// file -> line -> analyzer name -> entry covering that line.
	allowed map[string]map[int]map[string]*allowEntry
	entries []*allowEntry
	byKey   map[string]*allowEntry // "file:commentLine:name", dedupes re-added files
}

// NewSuppressor scans the files' comments for allow directives.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{
		allowed: make(map[string]map[int]map[string]*allowEntry),
		byKey:   make(map[string]*allowEntry),
	}
	s.Add(fset, files)
	return s
}

// Add scans more files into the suppressor. The driver aggregates every
// loaded package into one suppressor so tree-analyzer diagnostics and the
// -deadallow audit see all files; re-adding a file (test variants share
// sources) is idempotent.
func (s *Suppressor) Add(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		ext := stmtExtents(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					entry := s.entry(pos, name)
					// The comment's own line (end-of-line placement) and
					// the next line (standalone placement), each extended
					// to the end of the statement starting there.
					s.cover(pos.Filename, pos.Line, max(pos.Line, ext[pos.Line]), entry)
					s.cover(pos.Filename, pos.Line+1, max(pos.Line+1, ext[pos.Line+1]), entry)
				}
			}
		}
	}
}

func (s *Suppressor) entry(pos token.Position, name string) *allowEntry {
	key := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, name)
	if e, ok := s.byKey[key]; ok {
		return e
	}
	e := &allowEntry{Pos: pos, Name: name}
	s.byKey[key] = e
	s.entries = append(s.entries, e)
	return e
}

func (s *Suppressor) cover(file string, from, to int, e *allowEntry) {
	byLine := s.allowed[file]
	if byLine == nil {
		byLine = make(map[int]map[string]*allowEntry)
		s.allowed[file] = byLine
	}
	for line := from; line <= to; line++ {
		if byLine[line] == nil {
			byLine[line] = make(map[string]*allowEntry)
		}
		if byLine[line][e.Name] == nil {
			byLine[line][e.Name] = e
		}
	}
}

// stmtExtents maps each line on which a statement or declaration starts
// to the last line it spans, so an allow above a wrapped statement covers
// all of it. Compound statements and function declarations stop at their
// body's opening brace: their nested statements get their own extents.
func stmtExtents(fset *token.FileSet, f *ast.File) map[int]int {
	ext := make(map[int]int)
	record := func(n ast.Node, end token.Pos) {
		start := fset.Position(n.Pos()).Line
		stop := fset.Position(end).Line
		if stop > ext[start] {
			ext[start] = stop
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			record(n, n.Body.Lbrace)
		case *ast.ForStmt:
			record(n, n.Body.Lbrace)
		case *ast.RangeStmt:
			record(n, n.Body.Lbrace)
		case *ast.SwitchStmt:
			record(n, n.Body.Lbrace)
		case *ast.TypeSwitchStmt:
			record(n, n.Body.Lbrace)
		case *ast.SelectStmt:
			record(n, n.Body.Lbrace)
		case *ast.FuncDecl:
			if n.Body != nil {
				record(n, n.Body.Lbrace)
			} else {
				record(n, n.End())
			}
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
			// Containers: their children record themselves.
		case ast.Stmt:
			record(n, n.End())
		case *ast.GenDecl:
			record(n, n.End())
		case *ast.ValueSpec, *ast.TypeSpec, *ast.ImportSpec:
			record(n, n.End())
		}
		return true
	})
	return ext
}

// Suppressed reports whether d is silenced by an allow comment, marking
// the matching entry as used for the -deadallow audit.
func (s *Suppressor) Suppressed(d Diagnostic) bool {
	byLine := s.allowed[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[d.Pos.Line]
	if names == nil {
		return false
	}
	hit := false
	if e := names[d.Analyzer]; e != nil {
		e.used = true
		hit = true
	}
	if e := names["all"]; e != nil {
		e.used = true
		hit = true
	}
	return hit
}

// Stale returns the allow entries that suppressed nothing across every
// Suppressed/Filter call so far, in position order. Meaningful only after
// all analyzers have been filtered through this suppressor.
func (s *Suppressor) Stale() []StaleAllow {
	var out []StaleAllow
	for _, e := range s.entries {
		if !e.used {
			out = append(out, StaleAllow{Pos: e.Pos, Name: e.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Filter drops suppressed diagnostics and sorts the rest by position.
func (s *Suppressor) Filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !s.Suppressed(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// FuncObjOf resolves a call expression's callee to its *types.Func (methods
// and package-level functions; nil for builtins, conversions, and func
// values).
func FuncObjOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether obj is the package-level function (or method —
// recvName "" matches only package-level) path.name.
func IsPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// IsMethod reports whether fn is a method named name whose receiver's named
// type (after pointer indirection) is path.typeName.
func IsMethod(fn *types.Func, path, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == typeName
}

// ConstString returns the compile-time string value of e, if it has one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
