package shardedstate_test

import (
	"testing"

	"sprite/internal/analysis/linttest"
	"sprite/internal/analysis/shardedstate"
)

func TestShardedstate(t *testing.T) {
	linttest.Run(t, shardedstate.Analyzer, "a")
}
