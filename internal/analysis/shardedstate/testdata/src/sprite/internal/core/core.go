// Stub of sprite/internal/core for the shardedstate fixture: only the
// receiver type name and the BootOn signature the analyzer matches against
// must agree with the real package.
package core

import "sprite/internal/sim"

type Cluster struct{}

func (c *Cluster) BootOn(host int, name string, fn func(env *sim.Env) error) {}
