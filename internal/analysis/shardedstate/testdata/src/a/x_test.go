package a

import "sprite/internal/sim"

// _test.go files are exempt: tests routinely capture state and assert on
// it after Run returns, which the kernel's end-of-run barrier makes safe.
func testOnly(s *sim.Simulation, n *int) {
	s.SpawnOn(1, "t", func(env *sim.Env) error {
		*n++
		return nil
	})
}
