// Fixture for the shardedstate analyzer: activities confined to a shard
// via SpawnOn must not mutate captured state, draw from the shared random
// stream, or bump unsharded metrics; exclusive activities (Spawn) are
// unrestricted.
package a

import (
	"sprite/internal/metrics"
	"sprite/internal/sim"
)

type plane struct {
	ticks *metrics.Counter
	gap   *metrics.Timing
	depth *metrics.Gauge
	mbox  *sim.Mailbox
	seen  map[int]int
	total int
}

func good(s *sim.Simulation, p *plane) {
	s.SpawnOn(1, "good", func(env *sim.Env) error {
		r := env.LocalRand()
		slot := sim.WorkerSlot(env)
		local := 0
		for i := 0; i < 8; i++ {
			local += r.Intn(3) // literal-local state is fine
			p.ticks.IncSlot(slot)
			p.gap.ObserveSlot(slot, env.Now())
		}
		p.mbox.Send(env, local) // cross-shard data rides the mailbox
		return nil
	})
	// Exclusive activities may mutate shared state and use the unsharded
	// mutators: the serial commit order is the arbiter on shard 0.
	s.Spawn("collector", func(env *sim.Env) error {
		p.total++
		p.ticks.Inc()
		return nil
	})
}

func bad(s *sim.Simulation, p *plane, hosts []int) {
	s.SpawnOn(2, "bad", func(env *sim.Env) error {
		r := env.Rand()          // want `confined activity calls Env\.Rand`
		p.total += r.Intn(2)     // want `mutates captured state "p"`
		p.seen[1] = 2            // want `mutates captured state "p"`
		hosts[0] = 3             // want `mutates captured state "hosts"`
		p.ticks.Inc()            // want `unsharded Counter\.Inc: use IncSlot`
		p.ticks.Add(2)           // want `unsharded Counter\.Add: use AddSlot`
		p.gap.Observe(env.Now()) // want `unsharded Timing\.Observe: use ObserveSlot`
		p.depth.Set(1)           // want `mutates a Gauge`
		return nil
	})
}

// daemon is the closure-factory idiom (workload.BgLoad.daemon): the
// analyzer follows the SpawnOn argument into the returned literal.
func (p *plane) daemon(host int) func(env *sim.Env) error {
	return func(env *sim.Env) error {
		p.total += host // want `mutates captured state "p"`
		local := 0
		local++ // literal-local, fine
		return nil
	}
}

func viaFactory(s *sim.Simulation, p *plane) {
	s.SpawnOn(3, "via", p.daemon(3))
}

func suppressed(s *sim.Simulation, p *plane) {
	s.SpawnOn(4, "supp", func(env *sim.Env) error {
		p.total++ //spritelint:allow shardedstate fixture exercises the escape hatch
		return nil
	})
}
