// Fixture for the per-host confinement idioms (DESIGN.md §14): Env.SpawnOn
// and Cluster.BootOn are confinement points like Simulation.SpawnOn; the
// activity argument may be a local variable bound to a literal or a method
// value, in which case the receiver's whole same-package method family runs
// confined and is checked transitively.
package a

import (
	"sprite/internal/core"
	"sprite/internal/metrics"
	"sprite/internal/sim"
)

// dropped stands for package-global state: cross-shard from any confined
// body, even a host-kernel method's.
var dropped int

// endpoint is the host-kernel shape: the object (and so its fields) is
// handed to its host's shard together with its method family.
type endpoint struct {
	served *metrics.Counter
	gap    *metrics.Timing
	cache  map[int]int
	seq    int
}

// serve is the dispatch-loop idiom: a method value passed to SpawnOn. Its
// receiver state is the host's shard-local state — mutating it is the
// per-host idiom, not a violation — but package globals stay off limits.
func (ep *endpoint) serve(env *sim.Env) error {
	ep.seq++          // receiver state: shard-local under the per-host idiom
	ep.cache[ep.seq]++ // likewise through a map
	dropped++ // want `mutates captured state "dropped"`
	ep.account(env)
	return nil
}

// account is reached from serve through the receiver family: the analyzer
// follows it and applies the confined checks there too.
func (ep *endpoint) account(env *sim.Env) {
	slot := sim.WorkerSlot(env)
	ep.served.IncSlot(slot)
	ep.gap.Observe(env.Now()) // want `unsharded Timing\.Observe: use ObserveSlot`
	_ = env.Rand()            // want `confined activity calls Env\.Rand`
}

// handle spawns a per-request activity with Env.Spawn — it inherits serve's
// shard, and writes to the receiver reached from its literal stay
// shard-local; the package global does not.
func (ep *endpoint) handle(env *sim.Env) error {
	env.Spawn("req", func(henv *sim.Env) error {
		ep.seq++  // same shard as the spawner: fine
		dropped++ // want `mutates captured state "dropped"`
		return nil
	})
	return nil
}

func spawnEndpoints(s *sim.Simulation, a, b *endpoint) {
	s.SpawnOn(1, "ep-a", a.serve)
	// The same family spawned twice is checked (and reported) once.
	s.SpawnOn(2, "ep-b", b.serve)
	s.SpawnOn(3, "ep-h", a.handle)
}

// envSpawnOn is core's process-body idiom: a confined activity pins a child
// to a shard via Env.SpawnOn, with the body bound to a local variable.
func envSpawnOn(env *sim.Env, p *plane) {
	body := func(penv *sim.Env) error {
		local := 0
		local++           // body-local: fine
		p.total += local  // want `mutates captured state "p"`
		p.ticks.Inc()     // want `unsharded Counter\.Inc: use IncSlot`
		return nil
	}
	env.SpawnOn(4, "proc", body)
}

// bootOn is the driver idiom: Cluster.BootOn hands the literal to the
// host's shard.
func bootOn(c *core.Cluster, p *plane) {
	c.BootOn(7, "driver", func(env *sim.Env) error {
		procs := 0
		procs++ // literal-local: fine
		p.mbox.Send(env, procs)
		p.total = procs // want `mutates captured state "p"`
		return nil
	})
}
