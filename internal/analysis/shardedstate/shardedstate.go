// Package shardedstate enforces the confined-activity contract of the
// conservative parallel kernel (DESIGN.md §13, §14). An activity spawned
// with sim.Simulation.SpawnOn runs inside a worker's window, concurrently
// with activities on other shards; the only state it may touch is its own.
// Cross-shard data must flow through the kernel's ordered primitives —
// sim.Mailbox sends (whose delay clears the lookahead horizon) and the
// slot-sharded metrics cells merged at snapshot — because anything else is
// either a data race or, worse, a schedule-dependent result that breaks the
// bit-for-bit serial-equivalence guarantee the whole test pyramid leans on.
//
// The analyzer recognizes every confinement point in the tree:
//
//   - sim.Simulation.SpawnOn — the original bgload idiom;
//   - sim.Env.SpawnOn — a confined activity pinning a child to a shard
//     (core's process bodies);
//   - core.Cluster.BootOn — drivers handed to a host's shard (DESIGN.md
//     §14); the body runs confined exactly like a SpawnOn literal.
//
// and resolves the activity argument four ways: an inline func literal;
// the literal(s) returned by a same-package closure factory (the bgload
// `b.daemon(host)` idiom); a local variable bound to a literal (core's
// `body := func(...); env.SpawnOn(shard, ..., body)`); or a method value
// (rpc's `t.sim.SpawnOn(shard, ..., ep.dispatchLoop)` — the per-host
// confinement idiom, where a host-owned object and its whole method family
// are handed to the host's shard).
//
// Inside a confined body it flags
//
//   - writes to captured variables (assignment, op-assign, ++/--, through
//     selectors, indexes, or pointers whose base is declared outside the
//     body) — confined state must be body-local. For a method value the
//     receiver and parameters count as body-local: handing `ep.serve` to a
//     shard hands `ep`'s state with it, which is precisely the per-host
//     idiom, so only package-level captures are cross-shard;
//   - Env.Rand, the simulation-global stream (runtime panics too; the
//     analyzer moves the failure to lint time) — use Env.LocalRand;
//   - the unsharded metrics mutators Counter.Inc/Add and Timing.Observe —
//     use the slot-keyed variants with sim.WorkerSlot(env);
//   - Gauge.Set/Add — gauges are last-writer-wins and deliberately not
//     sharded; report through a Mailbox to an exclusive collector.
//
// When the confined body is a method, the analyzer also follows calls to
// other same-package methods of the same receiver type — the host-kernel
// method family reachable from the spawn (rpc's dispatchLoop →
// execAsync → execConfined → sendConfReply chain) — and applies the same
// checks there, each declaration checked and reported once. Calls into
// other types or packages are out of reach for a per-package analyzer and
// are left to the kernel's runtime checks.
//
// Exclusive activities (sim.Simulation.Spawn, shard 0) are unrestricted:
// the serial commit order is the arbiter there. _test.go files are exempt —
// tests capture state and assert on it after Run returns, which the
// end-of-run barrier makes safe.
package shardedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sprite/internal/analysis/lint"
)

const (
	simPkg     = "sprite/internal/sim"
	corePkg    = "sprite/internal/core"
	metricsPkg = "sprite/internal/metrics"
)

// unsharded lists the shard-oblivious metrics mutators and the slot-keyed
// replacement each confined activity must use instead (slice, not map: the
// report order on a line with several violations must be deterministic).
var unsharded = []struct {
	typ, method, repl string
}{
	{"Counter", "Inc", "IncSlot"},
	{"Counter", "Add", "AddSlot"},
	{"Timing", "Observe", "ObserveSlot"},
}

// Analyzer is the shardedstate check.
var Analyzer = &lint.Analyzer{
	Name: "shardedstate",
	Doc:  "confined activities (sim.SpawnOn / Env.SpawnOn / Cluster.BootOn, including host-kernel method values) must not mutate captured state, use Env.Rand, or bump unsharded metrics; cross-shard data flows through mailboxes and slot-sharded cells",
	Run:  run,
}

// confined is one body that will run on a confined shard: body is its
// statements, local is the node whose extent declares the body-local
// variables (the literal, or the whole declaration for a method — receiver
// and parameters are handed to the shard with it), and method is non-nil
// for a named method, enabling receiver-family following.
type confined struct {
	body   *ast.BlockStmt
	local  ast.Node
	method *types.Func
}

func run(pass *lint.Pass) (any, error) {
	// Each declaration is checked and reported once, however many spawn
	// sites or family call chains reach it.
	visited := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.FuncObjOf(pass.TypesInfo, call)
			if !isConfinePoint(fn) || len(call.Args) != 3 {
				return true
			}
			for _, cb := range confinedBodies(pass, call.Args[2]) {
				checkConfined(pass, cb, visited)
			}
			return true
		})
	}
	return nil, nil
}

// isConfinePoint reports whether fn hands its func argument to a confined
// shard.
func isConfinePoint(fn *types.Func) bool {
	return lint.IsMethod(fn, simPkg, "Simulation", "SpawnOn") ||
		lint.IsMethod(fn, simPkg, "Env", "SpawnOn") ||
		lint.IsMethod(fn, corePkg, "Cluster", "BootOn")
}

// confinedBodies resolves a confinement point's activity argument to the
// bodies that will actually run confined. Anything more dynamic (a func
// value threaded through a field or another package) is out of reach for a
// per-package analyzer and is left to the kernel's runtime checks.
func confinedBodies(pass *lint.Pass, arg ast.Expr) []confined {
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return []confined{{body: e.Body, local: e}}
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[e].(type) {
		case *types.Func:
			return funcBody(pass, obj)
		case *types.Var:
			// The local-body idiom: body := func(...){...}; SpawnOn(..., body).
			if lit := litBoundTo(pass, obj); lit != nil {
				return []confined{{body: lit.Body, local: lit}}
			}
		}
	case *ast.SelectorExpr:
		// The per-host method-value idiom: SpawnOn(shard, ..., ep.dispatchLoop).
		if fn, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return funcBody(pass, fn)
		}
	case *ast.CallExpr:
		// The closure-factory idiom: SpawnOn(shard, ..., b.daemon(host)).
		fn := lint.FuncObjOf(pass.TypesInfo, e)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
			return nil
		}
		decl := declOf(pass, fn)
		if decl == nil || decl.Body == nil {
			return nil
		}
		var out []confined
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, r := range ret.Results {
					if lit, ok := ast.Unparen(r).(*ast.FuncLit); ok {
						out = append(out, confined{body: lit.Body, local: lit})
					}
				}
			}
			// Returns inside the collected literals belong to the confined
			// body, not the factory; don't descend.
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
		return out
	}
	return nil
}

// funcBody resolves a same-package function or method value to its
// declaration's body.
func funcBody(pass *lint.Pass, fn *types.Func) []confined {
	if fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
		return nil
	}
	decl := declOf(pass, fn)
	if decl == nil || decl.Body == nil {
		return nil
	}
	var method *types.Func
	if fn.Type().(*types.Signature).Recv() != nil {
		method = fn
	}
	return []confined{{body: decl.Body, local: decl, method: method}}
}

// litBoundTo finds the func literal a local variable was defined as
// (`v := func(...){...}` or `var v = func(...){...}`), or nil when the
// variable is bound any other way.
func litBoundTo(pass *lint.Pass, v *types.Var) *ast.FuncLit {
	for _, f := range pass.Files {
		var found *ast.FuncLit
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || pass.TypesInfo.Defs[id] != types.Object(v) {
						continue
					}
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						found = lit
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if pass.TypesInfo.Defs[id] != types.Object(v) || i >= len(n.Values) {
						continue
					}
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						found = lit
					}
				}
			}
			return found == nil
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// declOf finds fn's declaration in the package being analyzed.
func declOf(pass *lint.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == types.Object(fn) {
				return fd
			}
		}
	}
	return nil
}

// recvType returns the named type of fn's receiver base, or nil for a
// plain function.
func recvType(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkConfined walks one confined body (nested literals included — they
// run on the same shard) and reports contract violations. For a method it
// also follows calls into the same receiver type's other same-package
// methods: the host-kernel family handed to the shard along with the
// receiver.
func checkConfined(pass *lint.Pass, cb confined, visited map[*types.Func]bool) {
	if cb.method != nil {
		if visited[cb.method] {
			return
		}
		visited[cb.method] = true
	}
	ast.Inspect(cb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, cb.local, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, cb.local, n.X)
		case *ast.CallExpr:
			checkCall(pass, n)
			if cb.method != nil {
				if callee := lint.FuncObjOf(pass.TypesInfo, n); callee != nil &&
					callee.Pkg() != nil && callee.Pkg().Path() == pass.Pkg.Path() &&
					recvType(callee) != nil && recvType(callee) == recvType(cb.method) {
					for _, sub := range funcBody(pass, callee) {
						checkConfined(pass, sub, visited)
					}
				}
			}
		}
		return true
	})
}

// checkWrite flags an assignment target whose base variable is captured
// from outside the confined body's local extent.
func checkWrite(pass *lint.Pass, local ast.Node, lhs ast.Expr) {
	base := lhs
	for {
		switch e := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return
			}
			if v.Pos() < local.Pos() || v.Pos() > local.End() {
				pass.Reportf(id.Pos(), "confined activity mutates captured state %q: cross-shard data must flow through sim.Mailbox sends or slot-sharded metrics (DESIGN.md §13)", id.Name)
			}
			return
		}
	}
}

// checkCall flags the banned callables inside a confined body.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.FuncObjOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if lint.IsMethod(fn, simPkg, "Env", "Rand") {
		pass.Reportf(call.Pos(), "confined activity calls Env.Rand (the simulation-global stream, order-dependent): use Env.LocalRand, seeded per (seed, shard, spawn ordinal)")
		return
	}
	for _, u := range unsharded {
		if fn.Name() == u.method && lint.IsMethod(fn, metricsPkg, u.typ, u.method) {
			pass.Reportf(call.Pos(), "confined activity uses unsharded %s.%s: use %s with the slot from sim.WorkerSlot(env)", u.typ, u.method, u.repl)
			return
		}
	}
	if lint.IsMethod(fn, metricsPkg, "Gauge", "Set") || lint.IsMethod(fn, metricsPkg, "Gauge", "Add") {
		pass.Reportf(call.Pos(), "confined activity mutates a Gauge (last-writer-wins, not sharded): report through a sim.Mailbox to an exclusive collector instead")
	}
}
