// Package shardedstate enforces the confined-activity contract of the
// conservative parallel kernel (DESIGN.md §13). An activity spawned with
// sim.Simulation.SpawnOn runs inside a worker's window, concurrently with
// activities on other shards; the only state it may touch is its own.
// Cross-shard data must flow through the kernel's ordered primitives —
// sim.Mailbox sends (whose delay clears the lookahead horizon) and the
// slot-sharded metrics cells merged at snapshot — because anything else is
// either a data race or, worse, a schedule-dependent result that breaks the
// bit-for-bit serial-equivalence guarantee the whole test pyramid leans on.
//
// The analyzer inspects every confined body reachable from a SpawnOn call:
// an inline func literal, or the literal(s) returned by a same-package
// closure factory (the bgload `b.daemon(host)` idiom). Inside one it flags
//
//   - writes to captured variables (assignment, op-assign, ++/--, through
//     selectors, indexes, or pointers whose base is declared outside the
//     literal) — confined state must be literal-local;
//   - Env.Rand, the simulation-global stream (runtime panics too; the
//     analyzer moves the failure to lint time) — use Env.LocalRand;
//   - the unsharded metrics mutators Counter.Inc/Add and Timing.Observe —
//     use the slot-keyed variants with sim.WorkerSlot(env);
//   - Gauge.Set/Add — gauges are last-writer-wins and deliberately not
//     sharded; report through a Mailbox to an exclusive collector.
//
// Exclusive activities (sim.Simulation.Spawn, shard 0) are unrestricted:
// the serial commit order is the arbiter there. _test.go files are exempt —
// tests capture state and assert on it after Run returns, which the
// end-of-run barrier makes safe.
package shardedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sprite/internal/analysis/lint"
)

const (
	simPkg     = "sprite/internal/sim"
	metricsPkg = "sprite/internal/metrics"
)

// unsharded lists the shard-oblivious metrics mutators and the slot-keyed
// replacement each confined activity must use instead (slice, not map: the
// report order on a line with several violations must be deterministic).
var unsharded = []struct {
	typ, method, repl string
}{
	{"Counter", "Inc", "IncSlot"},
	{"Counter", "Add", "AddSlot"},
	{"Timing", "Observe", "ObserveSlot"},
}

// Analyzer is the shardedstate check.
var Analyzer = &lint.Analyzer{
	Name: "shardedstate",
	Doc:  "confined activities (sim.SpawnOn) must not mutate captured state, use Env.Rand, or bump unsharded metrics; cross-shard data flows through mailboxes and slot-sharded cells",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.FuncObjOf(pass.TypesInfo, call)
			if !lint.IsMethod(fn, simPkg, "Simulation", "SpawnOn") || len(call.Args) != 3 {
				return true
			}
			for _, lit := range confinedBodies(pass, call.Args[2]) {
				checkConfined(pass, lit)
			}
			return true
		})
	}
	return nil, nil
}

// confinedBodies resolves SpawnOn's activity argument to the func literals
// that will actually run confined: the argument itself when it is a
// literal, or the literals returned by a same-package function/method when
// the argument is a closure-factory call. Anything more dynamic (a func
// value threaded through a variable or another package) is out of reach for
// a per-package analyzer and is left to the kernel's runtime checks.
func confinedBodies(pass *lint.Pass, arg ast.Expr) []*ast.FuncLit {
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return []*ast.FuncLit{e}
	case *ast.CallExpr:
		fn := lint.FuncObjOf(pass.TypesInfo, e)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
			return nil
		}
		decl := declOf(pass, fn)
		if decl == nil || decl.Body == nil {
			return nil
		}
		var lits []*ast.FuncLit
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, r := range ret.Results {
					if lit, ok := ast.Unparen(r).(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
			}
			// Returns inside the collected literals belong to the confined
			// body, not the factory; don't descend.
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
		return lits
	}
	return nil
}

// declOf finds fn's declaration in the package being analyzed.
func declOf(pass *lint.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == types.Object(fn) {
				return fd
			}
		}
	}
	return nil
}

// checkConfined walks one confined body (nested literals included — they
// run on the same shard) and reports contract violations.
func checkConfined(pass *lint.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, n.X)
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// checkWrite flags an assignment target whose base variable is captured
// from outside the confined literal.
func checkWrite(pass *lint.Pass, lit *ast.FuncLit, lhs ast.Expr) {
	base := lhs
	for {
		switch e := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return
			}
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				pass.Reportf(id.Pos(), "confined activity mutates captured state %q: cross-shard data must flow through sim.Mailbox sends or slot-sharded metrics (DESIGN.md §13)", id.Name)
			}
			return
		}
	}
}

// checkCall flags the banned callables inside a confined body.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.FuncObjOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if lint.IsMethod(fn, simPkg, "Env", "Rand") {
		pass.Reportf(call.Pos(), "confined activity calls Env.Rand (the simulation-global stream, order-dependent): use Env.LocalRand, seeded per (seed, shard, spawn ordinal)")
		return
	}
	for _, u := range unsharded {
		if fn.Name() == u.method && lint.IsMethod(fn, metricsPkg, u.typ, u.method) {
			pass.Reportf(call.Pos(), "confined activity uses unsharded %s.%s: use %s with the slot from sim.WorkerSlot(env)", u.typ, u.method, u.repl)
			return
		}
	}
	if lint.IsMethod(fn, metricsPkg, "Gauge", "Set") || lint.IsMethod(fn, metricsPkg, "Gauge", "Add") {
		pass.Reportf(call.Pos(), "confined activity mutates a Gauge (last-writer-wins, not sharded): report through a sim.Mailbox to an exclusive collector instead")
	}
}
