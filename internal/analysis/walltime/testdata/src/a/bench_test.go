// bench_test.go files are the wall-clock benchmark path and are exempt
// from the walltime analyzer (see AllowedFiles): measuring the simulator's
// real speed requires the real clock.
package a

import "time"

func benchTiming() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
