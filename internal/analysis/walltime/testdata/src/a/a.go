// Fixture for the walltime analyzer: wall-clock reads are violations,
// virtual-time arithmetic on time.Duration/time.Time values is not.
package a

import (
	"fmt"
	"time"
)

func violations() {
	now := time.Now() // want `wall-clock time\.Now in simulated code`
	_ = now
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulated code`
	<-time.After(time.Second)    // want `wall-clock time\.After in simulated code`
	_ = time.Since(now)          // want `wall-clock time\.Since in simulated code`
	_ = time.Tick(time.Second)   // want `wall-clock time\.Tick in simulated code`
	t := time.NewTimer(0)        // want `wall-clock time\.NewTimer in simulated code`
	t.Stop()
}

// passing a banned function as a value is just as much a clock dependency
// as calling it.
func asValue() func() time.Time {
	return time.Now // want `wall-clock time\.Now in simulated code`
}

func fine(virtual time.Duration) {
	deadline := virtual + 50*time.Millisecond
	if deadline > time.Second {
		fmt.Println("late")
	}
	_ = time.Unix(0, int64(virtual)) // constructing a time.Time is not reading the clock
	_ = time.Duration(42).String()
}

func suppressed() {
	_ = time.Now() //spritelint:allow walltime fixture exercises the escape hatch
}

func suppressedLineAbove() {
	//spritelint:allow walltime fixture exercises the line-above form
	time.Sleep(time.Millisecond)
}
