package walltime_test

import (
	"testing"

	"sprite/internal/analysis/linttest"
	"sprite/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, walltime.Analyzer, "a")
}
