// Package walltime forbids reading or waiting on the wall clock inside the
// simulation tree. Everything the repo's goldens, the migbench regression
// gate, and the seed-replayable fuzzer promise rests on simulated code
// seeing only virtual time (sim.Env.Now/Sleep); one stray time.Now() turns
// a byte-identical replay into a flaky one. time.Duration values and
// time.Time arithmetic remain fine — only the functions that sample or
// schedule against the real clock are banned.
package walltime

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"sprite/internal/analysis/lint"
)

// Banned are the time-package functions that sample or wait on the wall
// clock. Referencing one at all (called or passed as a value) is a
// violation.
var Banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// AllowedFiles lists file base names exempt from the check: the wall-clock
// benchmark path (Makefile bench-wallclock) measures the simulator's real
// speed, so its files legitimately touch the host clock. wallclock.go is
// E17, the experiment whose subject is the simulator's own wallclock; its
// determinism claim is carried by the order digest, not byte-stable output.
var AllowedFiles = map[string]bool{
	"bench_test.go":     true,
	"wallclock.go":      true,
	"wallclock_test.go": true,
}

// Analyzer is the walltime check.
var Analyzer = &lint.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads (time.Now, time.Sleep, ...) in simulated code; virtual time must come from sim.Env",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		if AllowedFiles[filepath.Base(pass.Filename(f.Pos()))] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !Banned[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "wall-clock time.%s in simulated code: derive time from sim.Env (virtual clock) instead", fn.Name())
			return true
		})
	}
	return nil, nil
}
