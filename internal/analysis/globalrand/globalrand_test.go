package globalrand_test

import (
	"testing"

	"sprite/internal/analysis/globalrand"
	"sprite/internal/analysis/linttest"
)

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, globalrand.Analyzer, "a")
}
