// Package globalrand forbids math/rand's package-level functions. The
// global source is seeded once per process and shared by everything, so a
// single rand.Intn() in the workload generator or an experiment would make
// scenario replay depend on call interleaving across the whole binary.
// Every stream of randomness must instead flow from a *rand.Rand built
// with rand.New(rand.NewSource(seed)) — the constructors stay allowed —
// so a scenario is a pure function of its seed.
package globalrand

import (
	"go/ast"
	"go/types"

	"sprite/internal/analysis/lint"
)

// allowed are the math/rand package-level functions that construct or feed
// an explicit source rather than consuming the global one.
var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// randPkgs are the package paths covered. math/rand/v2 is included: it has
// no Seed at all, so its top-level functions are unreplayable by design.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer is the globalrand check.
var Analyzer = &lint.Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; randomness must flow from a seeded *rand.Rand so runs replay",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] || allowed[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand etc. are the endorsed path
			}
			pass.Reportf(id.Pos(), "global %s.%s: draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so the run replays", fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil, nil
}
