// Fixture for the globalrand analyzer: package-level math/rand functions
// are violations; seeded *rand.Rand streams and the constructors are the
// endorsed path.
package a

import "math/rand"

func violations() {
	_ = rand.Intn(6)        // want `global rand\.Intn`
	_ = rand.Float64()      // want `global rand\.Float64`
	_ = rand.Int63()        // want `global rand\.Int63`
	_ = rand.Perm(4)        // want `global rand\.Perm`
	rand.Shuffle(3, swap)   // want `global rand\.Shuffle`
	rand.Seed(42)           // want `global rand\.Seed`
	_ = rand.ExpFloat64()   // want `global rand\.ExpFloat64`
	f := rand.NormFloat64   // want `global rand\.NormFloat64`
	_ = f
}

func swap(i, j int) {}

func fine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, 100)
	_ = z.Uint64()
	rng.Shuffle(3, swap) // method on the seeded stream, not the global one
	return rng.Float64()
}

func suppressed() int {
	return rand.Intn(2) //spritelint:allow globalrand fixture exercises the escape hatch
}
