package simtaint

import (
	"testing"

	"sprite/internal/analysis/dataflow"
	"sprite/internal/analysis/linttest"
)

func TestSimtaint(t *testing.T) {
	tree := linttest.RunTree(t, Analyzer, "a")
	// The allow-listed file suppresses the diagnostic, not the taint:
	// wallReport's summary still records the wall-clock hit.
	s := tree.Sums["a.wallReport"]
	if s == nil || len(s.SinkHits) != 1 || s.SinkHits[0].Kinds&dataflow.KWalltime == 0 {
		t.Errorf("wallReport should still carry the suppressed wall-clock sink hit: %+v", s)
	}
}
