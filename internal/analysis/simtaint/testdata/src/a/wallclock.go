// wallclock.go sits on walltime's allow list: the wall-clock budget
// plumbing legitimately reports real elapsed time. simtaint still
// computes taint through this file but suppresses wall-clock sink hits
// inside it.
package a

import sim "sprite/internal/sim"

func wallReport(env *sim.Env) {
	env.Emit("wall.elapsed", stamp())
}
