// Fixture: each sink hit is one call hop away from its source. The
// per-function walltime/globalrand/maporder analyzers flag the source
// lines (stamp, jitter) but cannot see that the values reach trace
// emission — only the whole-tree taint summaries connect them.
package a

import (
	"math/rand"
	"sort"
	"strconv"
	"time"

	sim "sprite/internal/sim"
)

func stamp() string { return time.Now().Format(time.RFC3339) }

func jitter() int { return rand.Intn(10) }

func report(env *sim.Env) {
	env.Emit("host.up", stamp()) // want `wall-clock-derived value reaches sim\.\(Env\)\.Emit; goldens and seed replay diverge`
}

func emitJitter(env *sim.Env) {
	env.Emit("host.jitter", strconv.Itoa(jitter())) // want `global-rand-derived value reaches sim\.\(Env\)\.Emit`
}

// clean: deterministic clocks and per-shard randomness carry no taint.
func reportClean(env *sim.Env) {
	env.Emit("host.tick", strconv.Itoa(int(env.Now())))
	env.Emit("host.pick", strconv.Itoa(env.LocalRand().Intn(10)))
}

func helperEmit(env *sim.Env, k string) { env.Emit("host.key", k) }

func dump(env *sim.Env, m map[string]string) {
	for k := range m {
		helperEmit(env, k) // want `a\.helperEmit emits order-sensitively and is called once per map iteration` `map-order-derived value reaches via a\.helperEmit`
	}
}

// dumpSorted is forgiven: the keys are sorted before the emitting loop.
func dumpSorted(env *sim.Env, m map[string]string) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		helperEmit(env, k)
	}
}
