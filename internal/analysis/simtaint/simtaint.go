// Package simtaint reports nondeterministic values — wall clock, global
// rand, map iteration order — reaching determinism-sensitive sinks (trace
// emission, metrics values, output) through call chains.
//
// The per-function walltime/globalrand/maporder analyzers flag the source
// expressions themselves; simtaint closes the interprocedural gap: a
// helper that returns time.Now().String() is clean in isolation, and so
// is the caller that hands an opaque string to env.Emit — only the
// whole-tree taint summaries (internal/analysis/dataflow) connect the
// two. Diagnostics land at the call site where the tainted value enters
// the sink, the one place a fix applies.
//
// Files on walltime's allow list (wallclock.go, bench_test.go, ...) keep
// their wall-clock exemption: taint is still computed through them, but
// wall-clock sink hits inside them are not reported.
package simtaint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/dataflow"
	"sprite/internal/analysis/lint"
	"sprite/internal/analysis/walltime"
)

// Analyzer is the whole-tree taint checker.
var Analyzer = &dataflow.TreeAnalyzer{
	Name: "simtaint",
	Doc:  "nondeterministic values reaching trace/metrics/output sinks through call chains",
	Run:  run,
}

func run(t *dataflow.Tree) ([]lint.Diagnostic, error) {
	ids := make([]callgraph.FuncID, 0, len(t.Sums))
	for id := range t.Sums {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var diags []lint.Diagnostic
	for _, id := range ids {
		s := t.Sums[id]
		for _, h := range s.SinkHits {
			kinds := h.Kinds & dataflow.SourceMask
			if walltime.AllowedFiles[filepath.Base(h.Pos.Filename)] {
				kinds &^= dataflow.KWalltime
			}
			if kinds == 0 {
				continue
			}
			diags = append(diags, lint.Diagnostic{
				Pos:      h.Pos,
				Analyzer: "simtaint",
				Message: fmt.Sprintf(
					"%s-derived value reaches %s; goldens and seed replay diverge — derive it from env.Now()/env.LocalRand() or keep it out of the sink",
					kinds.SourceString(), h.Sink),
			})
		}
		for _, h := range s.RangeEmitHits {
			diags = append(diags, lint.Diagnostic{
				Pos:      h.Pos,
				Analyzer: "simtaint",
				Message: fmt.Sprintf(
					"%s emits order-sensitively and is called once per map iteration; iterate a sorted copy of the keys",
					short(h.Callee)),
			})
		}
	}
	sortDiags(diags)
	return diags, nil
}

func short(id callgraph.FuncID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func sortDiags(diags []lint.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
