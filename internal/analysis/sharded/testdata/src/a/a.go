// Fixture: the unsharded metrics mutators live in methods two hops below
// the spawn literal. The per-function shardedstate analyzer inspects only
// the literal body and sees nothing here; sharded joins the per-function
// facts against confined reachability.
package a

import (
	metrics "sprite/internal/metrics"
	sim "sprite/internal/sim"
)

type meter struct {
	served  *metrics.Counter
	latency *metrics.Timing
	depth   *metrics.Gauge
}

func Boot(s *sim.Simulation, m *meter) {
	s.SpawnOn(2, "serve", func(env *sim.Env) error {
		m.serve(env)
		return nil
	})
}

func (m *meter) serve(env *sim.Env) {
	m.bump(env)
	m.bumpSlot(env)
}

func (m *meter) bump(env *sim.Env) {
	m.served.Inc()               // want `metrics\.Counter\.Inc contends across shards \(use Counter\.IncSlot with sim\.WorkerSlot\) — reachable from confined spawn: SpawnOn -> a\.Boot\$1 -> a\.\(meter\)\.serve -> a\.\(meter\)\.bump`
	m.latency.Observe(env.Now()) // want `metrics\.Timing\.Observe contends across shards \(use Timing\.ObserveSlot with sim\.WorkerSlot\) — reachable from confined spawn`
	m.depth.Add(1)               // want `metrics\.Gauge\.Add is deliberately unsharded; gauges must be driven from the exclusive shard — reachable from confined spawn`
}

// bumpSlot is the compliant path: slot-sharded mutators keyed by the
// worker slot are cheap and interleaving-independent.
func (m *meter) bumpSlot(env *sim.Env) {
	m.served.IncSlot(sim.WorkerSlot(env))
	m.latency.ObserveSlot(sim.WorkerSlot(env), env.Now())
}

// Drain runs exclusively (Simulation.Spawn spawns on shard 0): unsharded
// mutators are legal there, so drainAll is reported nowhere.
func Drain(s *sim.Simulation, m *meter) {
	s.Spawn("drain", func(env *sim.Env) error {
		m.drainAll()
		return nil
	})
}

func (m *meter) drainAll() {
	m.served.Add(1)
	m.depth.Set(0)
}
