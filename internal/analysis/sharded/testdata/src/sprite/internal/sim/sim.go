// Stub of sprite/internal/sim for the sharded fixture: only the receiver
// type names and method signatures the engine matches against must agree
// with the real package.
package sim

import (
	"math/rand"
	"time"
)

type Simulation struct{}

type Env struct{}

func (s *Simulation) Spawn(name string, fn func(env *Env) error) *Env { return nil }
func (s *Simulation) SpawnOn(shard int, name string, fn func(env *Env) error) *Env {
	return nil
}
func (s *Simulation) Rand() *rand.Rand             { return nil }
func (s *Simulation) After(d time.Duration, fn func()) {}
func (s *Simulation) Stop()                        {}

func (e *Env) Spawn(name string, fn func(env *Env) error) *Env { return nil }
func (e *Env) SpawnOn(shard int, name string, fn func(env *Env) error) *Env {
	return nil
}

func (e *Env) Rand() *rand.Rand            { return nil }
func (e *Env) LocalRand() *rand.Rand       { return nil }
func (e *Env) Now() time.Duration          { return 0 }
func (e *Env) Sleep(d time.Duration) error { return nil }
func (e *Env) Emit(kind, detail string)    {}

type Mailbox struct{}

func (m *Mailbox) Send(env *Env, v any)       {}
func (m *Mailbox) Recv(env *Env) (any, error) { return nil, nil }
func (m *Mailbox) Close()                     {}

func WorkerSlot(env *Env) int { return 0 }
