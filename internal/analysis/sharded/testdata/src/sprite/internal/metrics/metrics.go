// Stub of sprite/internal/metrics for the sharded fixture: the
// instrument types and the sharded/unsharded mutator pairs must match the
// real package.
package metrics

import "time"

type Counter struct{}

func (c *Counter) Inc()                      {}
func (c *Counter) Add(n int64)               {}
func (c *Counter) IncSlot(slot int)          {}
func (c *Counter) AddSlot(slot int, n int64) {}

type Timing struct{}

func (t *Timing) Observe(d time.Duration)               {}
func (t *Timing) ObserveSlot(slot int, d time.Duration) {}

type Gauge struct{}

func (g *Gauge) Set(v int64)  {}
func (g *Gauge) Add(n int64)  {}
