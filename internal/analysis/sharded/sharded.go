// Package sharded enforces the slot-sharded metrics discipline across
// call chains: code that runs on confined shards must mutate counters
// and timings through the per-worker-slot variants (Counter.IncSlot,
// Counter.AddSlot, Timing.ObserveSlot) and must not drive gauges at all
// — the unsharded mutators serialize on one cache line and, worse, make
// the metric's final value depend on cross-shard interleaving.
//
// The per-function shardedstate analyzer flags unsharded mutators
// written directly inside a confined spawn literal. sharded joins the
// same facts (collected per function by internal/analysis/dataflow)
// against the confined reachability closure, so a metrics helper called
// three frames below the spawn point is caught too, with the witness
// chain in the message.
package sharded

import (
	"sort"

	"sprite/internal/analysis/callgraph"
	"sprite/internal/analysis/dataflow"
	"sprite/internal/analysis/lint"
)

// Analyzer is the whole-tree sharded-metrics checker.
var Analyzer = &dataflow.TreeAnalyzer{
	Name: "sharded",
	Doc:  "unsharded metrics mutators (Inc/Add/Observe, gauges) reachable from confined spawns",
	Run:  run,
}

func run(t *dataflow.Tree) ([]lint.Diagnostic, error) {
	reach := t.ConfinedReachable()
	ids := make([]callgraph.FuncID, 0, len(reach))
	for id := range reach {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var diags []lint.Diagnostic
	for _, id := range ids {
		s := t.Sums[id]
		if s == nil {
			continue
		}
		chain := reach[id].String()
		for _, f := range s.UnshardedMetrics {
			diags = append(diags, lint.Diagnostic{
				Pos:      f.Pos,
				Analyzer: "sharded",
				Message:  f.What + " — reachable from confined spawn: " + chain,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
