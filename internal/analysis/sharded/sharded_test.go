package sharded

import (
	"testing"

	"sprite/internal/analysis/linttest"
)

func TestSharded(t *testing.T) {
	linttest.RunTree(t, Analyzer, "a")
}
