package fleet

import (
	"errors"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// startDrain moves a cordoned host into Draining and runs the first pass
// immediately so short drains finish within one controller tick.
func (m *Manager) startDrain(env *sim.Env, rec *hostRec) {
	m.drainsStarted.Inc()
	rec.drain = m.audit.begin(rec.host, env.Now())
	m.enter(rec, Draining, env.Now())
	m.drainPass(env, rec)
}

// drainPass runs one pass over the draining host's residents: live
// migration through the selector (home first for foreign processes),
// checkpoint/restart evacuation through the supervisor for residents no
// host will take, and bookkeeping for processes that exited or moved on
// their own. The pass is gated by the fleet.drain failpoint; an injected
// failure stalls the drain for one tick without losing state.
func (m *Manager) drainPass(env *sim.Env, rec *hostRec) {
	now := env.Now()
	if m.c.HostDown(rec.host) {
		// The host died under us: whatever was resident is the recovery
		// plane's problem now (reap + supervisor failover), not a drain
		// loss. Close the trail and remediate.
		for _, pid := range sortedPIDs(rec.drain.residents) {
			if rec.drain.residents[pid].disp == "" {
				m.audit.dispose(rec.drain, pid, dispCrashed)
			}
		}
		m.finishDrain(env, rec)
		return
	}
	if err := m.c.FailAt(env, "fleet.drain", core.NilPID); err != nil {
		m.stallsC.Inc()
		return
	}
	k := m.c.KernelOn(rec.host)
	if k == nil {
		m.finishDrain(env, rec)
		return
	}

	// Snapshot the resident set (sorted by pid) and settle the easy
	// dispositions before spending time on migrations.
	var pending []*core.Process
	for _, p := range k.Processes() {
		r := m.audit.ensure(rec.drain, p)
		if r.disp != "" {
			continue
		}
		switch {
		case p.State() == core.StateExited:
			m.audit.dispose(rec.drain, p.PID(), dispExited)
			m.exitedC.Inc()
		case p.Current() != k:
			m.audit.dispose(rec.drain, p.PID(), dispMigrated)
			m.migratedC.Inc()
		default:
			pending = append(pending, p)
		}
	}
	// Residents observed in an earlier pass may have left the host since.
	for _, pid := range sortedPIDs(rec.drain.residents) {
		r := rec.drain.residents[pid]
		if r.disp != "" {
			continue
		}
		p := r.proc
		if p.State() == core.StateExited {
			m.audit.dispose(rec.drain, pid, dispExited)
			m.exitedC.Inc()
		} else if p.Current() != k {
			m.audit.dispose(rec.drain, pid, dispMigrated)
			m.migratedC.Inc()
		}
	}

	var stranded, evacuees []*core.Process
	for _, p := range pending {
		if m.sup != nil && m.sup.Supervised(p.PID()) && !p.Foreign() {
			// A supervised job resident at its home: live migration would
			// keep the home dependency and the coming remediation reboot
			// would orphan it (Sprite home-dependency semantics); a
			// checkpoint relaunch re-homes it instead.
			evacuees = append(evacuees, p)
			continue
		}
		switch m.drainOne(env, k, rec, p) {
		case drainMoved:
			// disposed inside drainOne
		case drainInFlight:
			// migration requested but not resolved yet; next pass settles it
		case drainNoTarget:
			stranded = append(stranded, p)
		}
	}
	// Checkpoint/restart fallback: supervised residents nobody will take
	// as a live migration join the evacuation batch.
	if m.sup != nil {
		for _, p := range stranded {
			if m.sup.Supervised(p.PID()) {
				evacuees = append(evacuees, p)
			}
		}
	}
	// One Evacuate call covers every supervised job on (or homed on) the
	// host: each is killed and relaunched from its checkpoint elsewhere.
	if len(evacuees) > 0 {
		if _, err := m.sup.Evacuate(env, rec.host); err == nil {
			for _, p := range evacuees {
				m.audit.dispose(rec.drain, p.PID(), dispEvacuated)
				m.evacuatedC.Inc()
			}
		}
	}

	// Completion: every tracked resident disposed and nothing left running.
	remaining := 0
	for _, p := range m.c.KernelOn(rec.host).Processes() {
		if p.State() != core.StateExited {
			remaining++
		}
	}
	if remaining == 0 {
		undisposed := 0
		for _, pid := range sortedPIDs(rec.drain.residents) {
			if rec.drain.residents[pid].disp == "" {
				undisposed++
			}
		}
		if undisposed == 0 {
			m.drainLatency.Observe(now - rec.drain.start)
			m.finishDrain(env, rec)
		}
	}
}

type drainOutcome int

const (
	drainMoved drainOutcome = iota
	drainInFlight
	drainNoTarget
)

// drainOne tries to move one resident off the draining host. Foreign
// processes go home when the home host is up (the paper's eviction path);
// everything else asks the selector for a destination.
func (m *Manager) drainOne(env *sim.Env, k *core.Kernel, rec *hostRec, p *core.Process) drainOutcome {
	target, claimed := m.drainTarget(env, rec.host, p)
	if target == nil {
		return drainNoTarget
	}
	f := k.RequestMigration(p, target, "fleet drain")
	_, err := f.WaitTimeout(env, m.p.DrainPassTimeout)
	if claimed != nil {
		// The claim served its purpose (or failed to); hand it back either
		// way — the migrated process is not a selector placement.
		_ = m.sel.Release(env, rec.host, claimed)
	}
	switch {
	case err == nil:
		m.audit.dispose(rec.drain, p.PID(), dispMigrated)
		m.migratedC.Inc()
		return drainMoved
	case errors.Is(err, core.ErrNoSuchProcess):
		// Vacated on its own — exited before the migration point.
		m.audit.dispose(rec.drain, p.PID(), dispExited)
		m.exitedC.Inc()
		return drainMoved
	case errors.Is(err, sim.ErrTimeout):
		// Still pending; the request resolves at the next migration point
		// and the next pass will see the process gone.
		return drainInFlight
	default:
		// ErrNotMigratable (shared memory, migration already pending) or an
		// abort: live migration cannot move this one.
		return drainNoTarget
	}
}

// drainTarget picks where a resident should go. It returns the target
// kernel and, if the selector granted it, the claim to release afterwards.
func (m *Manager) drainTarget(env *sim.Env, from rpc.HostID, p *core.Process) (*core.Kernel, []rpc.HostID) {
	if p.Foreign() {
		home := p.Home()
		if home != nil && !m.c.HostDown(home.Host()) {
			return home, nil
		}
	}
	if m.sel == nil {
		return nil, nil
	}
	hosts, err := m.sel.RequestHosts(env, from, 1)
	if err != nil || len(hosts) == 0 {
		if len(hosts) > 0 {
			_ = m.sel.Release(env, from, hosts)
		}
		return nil, nil
	}
	target := hosts[0]
	if target == from || m.c.HostDown(target) {
		_ = m.sel.Release(env, from, hosts)
		return nil, nil
	}
	tk := m.c.KernelOn(target)
	if tk == nil {
		_ = m.sel.Release(env, from, hosts)
		return nil, nil
	}
	return tk, hosts
}

// finishDrain closes the audit trail and moves the host to Remediating.
func (m *Manager) finishDrain(env *sim.Env, rec *hostRec) {
	// Final home-dependency sweep: supervised jobs merely homed here (and
	// resident elsewhere) must be re-homed by a checkpoint relaunch before
	// the reboot orphans them. Residents are already gone, so this only
	// matches homed-elsewhere jobs.
	if m.sup != nil && !m.c.HostDown(rec.host) {
		_, _ = m.sup.Evacuate(env, rec.host)
	}
	m.audit.complete(rec.drain, env.Now())
	m.drainsCompleted.Inc()
	rec.drain = nil
	m.enter(rec, Remediating, env.Now())
	// Remediation runs in the same tick when the failpoint allows: an
	// empty host has nothing to wait for.
	m.remediate(env, rec)
}
