package fleet

import (
	"math"
	"time"
)

// signal is an exponentially-decayed event-rate accumulator: each bump
// adds weight, and the accumulated value halves every half-life. Because
// decay is a pure function of the gap between virtual timestamps, a
// signal's trajectory is identical on the serial and parallel kernels.
type signal struct {
	value float64
	last  time.Duration
}

// bump decays the accumulator to `now` and adds w.
func (s *signal) bump(now time.Duration, halfLife time.Duration, w float64) {
	s.value = s.at(now, halfLife) + w
	s.last = now
}

// at returns the decayed value at time now without mutating the signal.
func (s *signal) at(now time.Duration, halfLife time.Duration) float64 {
	if s.value == 0 {
		return 0
	}
	dt := now - s.last
	if dt <= 0 {
		return s.value
	}
	if halfLife <= 0 {
		return 0
	}
	return s.value * math.Exp2(-float64(dt)/float64(halfLife))
}
