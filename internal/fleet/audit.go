package fleet

import (
	"fmt"
	"sort"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
)

// Disposition labels for drained residents.
const (
	dispMigrated  = "migrated"  // moved off by live migration
	dispEvacuated = "evacuated" // killed + relaunched by the supervisor
	dispExited    = "exited"    // finished on its own during the drain
	dispCrashed   = "crashed"   // host died mid-drain; recovery owns it now
)

// residentRec is one process caught by a drain.
type residentRec struct {
	proc *core.Process
	disp string // empty while in flight
}

// drainRec is the audit trail of one drain of one host.
type drainRec struct {
	host      rpc.HostID
	start     time.Duration
	end       time.Duration
	completed bool
	residents map[core.PID]*residentRec
}

// drainAudit is the drain-safety oracle, registered into
// Cluster.CheckInvariants like the hostsel claim ledger: every process
// resident on a draining host must be accounted for (no PID lost), no
// process may end up placed twice, and a completed drain must leave its
// host empty. Violations accumulate and fail the invariant sweep.
type drainAudit struct {
	c          *core.Cluster
	records    []*drainRec
	violations []string
}

func newDrainAudit() *drainAudit { return &drainAudit{} }

// register hooks the audit into the cluster's invariant sweep.
func (a *drainAudit) register(c *core.Cluster, m *Manager) {
	a.c = c
	c.AddInvariantCheck(func(endOfRun bool) []string {
		return a.check(m, endOfRun)
	})
}

// begin opens the audit trail for a drain of host starting at `start`.
func (a *drainAudit) begin(host rpc.HostID, start time.Duration) *drainRec {
	rec := &drainRec{host: host, start: start, residents: make(map[core.PID]*residentRec)}
	a.records = append(a.records, rec)
	return rec
}

// ensure adds p to the drain's resident set on first sighting.
func (a *drainAudit) ensure(rec *drainRec, p *core.Process) *residentRec {
	r := rec.residents[p.PID()]
	if r == nil {
		r = &residentRec{proc: p}
		rec.residents[p.PID()] = r
	}
	return r
}

// dispose records what happened to one resident. Conflicting dispositions
// are a violation: a process disposed twice means the drain moved it twice.
func (a *drainAudit) dispose(rec *drainRec, pid core.PID, disp string) {
	r := rec.residents[pid]
	if r == nil {
		a.violations = append(a.violations,
			fmt.Sprintf("drain %v: disposition %q for untracked resident %v", rec.host, disp, pid))
		return
	}
	if r.disp != "" && r.disp != disp {
		a.violations = append(a.violations,
			fmt.Sprintf("drain %v: resident %v disposed %q after %q", rec.host, pid, disp, r.disp))
		return
	}
	r.disp = disp
}

// complete closes the drain at time end and verifies the terminal
// conditions: every resident disposed, and the host actually empty.
func (a *drainAudit) complete(rec *drainRec, end time.Duration) {
	rec.completed = true
	rec.end = end
	for _, pid := range sortedPIDs(rec.residents) {
		if rec.residents[pid].disp == "" {
			a.violations = append(a.violations,
				fmt.Sprintf("drain %v: resident %v lost (no disposition at completion)", rec.host, pid))
		}
	}
	if k := a.c.KernelOn(rec.host); k != nil && !a.c.HostDown(rec.host) {
		for _, p := range k.Processes() {
			if p.State() != core.StateExited {
				a.violations = append(a.violations,
					fmt.Sprintf("drain %v: completed with %v still resident", rec.host, p.PID()))
			}
		}
	}
}

// check is the invariant sweep: accumulated violations, plus the global
// double-placement scan (a live PID executing on two hosts at once means a
// drain re-placed a process that had already moved).
func (a *drainAudit) check(m *Manager, endOfRun bool) []string {
	out := append([]string(nil), a.violations...)
	seen := make(map[core.PID]rpc.HostID)
	for _, host := range m.hosts {
		k := m.c.KernelOn(host)
		if k == nil || m.c.HostDown(host) {
			continue
		}
		for _, p := range k.Processes() {
			if p.State() == core.StateExited {
				continue
			}
			if prev, dup := seen[p.PID()]; dup {
				out = append(out, fmt.Sprintf(
					"drain safety: %v resident on both %v and %v", p.PID(), prev, host))
			}
			seen[p.PID()] = host
		}
	}
	if endOfRun {
		for _, rec := range a.records {
			if !rec.completed {
				// An unfinished drain at end of run is not a violation by
				// itself (the storm may simply end mid-drain), but a
				// tracked resident that can no longer be found anywhere —
				// and has not exited — is a lost process.
				for _, pid := range sortedPIDs(rec.residents) {
					r := rec.residents[pid]
					if r.disp != "" || r.proc.State() == core.StateExited {
						continue
					}
					if _, placed := seen[pid]; !placed && !m.c.HostDown(r.proc.Current().Host()) {
						out = append(out, fmt.Sprintf(
							"drain %v: resident %v lost at end of run", rec.host, pid))
					}
				}
			}
		}
	}
	return out
}

// Drains returns how many drains began and how many completed.
func (a *drainAudit) Drains() (started, completed int) {
	for _, rec := range a.records {
		started++
		if rec.completed {
			completed++
		}
	}
	return
}

func sortedPIDs(m map[core.PID]*residentRec) []core.PID {
	out := make([]core.PID, 0, len(m))
	for pid := range m {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Home != out[j].Home {
			return out[i].Home < out[j].Home
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
