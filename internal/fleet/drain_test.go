package fleet

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/recovery"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

var smallProc = core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: 8, StackPages: 2}

// fastParams compresses every fleet timescale so a full
// cordon→drain→remediate→readmit lifecycle fits in tens of simulated
// milliseconds.
func fastParams() Params {
	return Params{
		Tick:             5 * time.Millisecond,
		CordonThreshold:  55,
		CordonGrace:      20 * time.Millisecond,
		DrainPassTimeout: 30 * time.Millisecond,
		CleanProbes:      2,
		HalfLife:         40 * time.Millisecond,
	}
}

// fakeSelector is a deterministic stand-in for the gossip selector: it
// grants live, available hosts in sorted order, excluding the requester.
type fakeSelector struct {
	c     *core.Cluster
	avail map[rpc.HostID]bool
	stats hostsel.Stats
}

var _ hostsel.Selector = (*fakeSelector)(nil)

func newFakeSelector(c *core.Cluster) *fakeSelector {
	s := &fakeSelector{c: c, avail: make(map[rpc.HostID]bool)}
	for _, k := range c.Workstations() {
		s.avail[k.Host()] = true
	}
	return s
}

func (s *fakeSelector) Name() string { return "fake" }

func (s *fakeSelector) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	s.stats.Requests++
	var cands []rpc.HostID
	for h, ok := range s.avail {
		if ok && h != client && !s.c.HostDown(h) {
			cands = append(cands, h)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	if len(cands) > n {
		cands = cands[:n]
	}
	if len(cands) == 0 {
		s.stats.Denied++
		return nil, hostsel.ErrNoHosts
	}
	s.stats.Granted += uint64(len(cands))
	return cands, nil
}

func (s *fakeSelector) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	return nil
}

func (s *fakeSelector) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	s.avail[host] = available
	return nil
}

func (s *fakeSelector) Stats() hostsel.Stats { return s.stats }

// fix bundles one cluster + manager + fake selector test rig.
type fix struct {
	t   *testing.T
	c   *core.Cluster
	m   *Manager
	sel *fakeSelector
}

func newFix(t *testing.T, ws int, p Params) *fix {
	t.Helper()
	c, err := core.NewCluster(core.Options{Workstations: ws, FileServers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 128<<10); err != nil {
		t.Fatal(err)
	}
	sel := newFakeSelector(c)
	m := New(c, p)
	m.SetSelector(sel)
	return &fix{t: t, c: c, m: m, sel: sel}
}

// run boots the manager and the driver, runs the cluster dry, and sweeps
// the invariants (which include the drain-safety audit).
func (f *fix) run(fn func(env *sim.Env) error) {
	f.t.Helper()
	f.m.Start()
	f.c.Boot("driver", func(env *sim.Env) error {
		err := fn(env)
		f.m.Stop()
		return err
	})
	if err := f.c.Run(time.Minute); err != nil {
		f.t.Fatalf("cluster run: %v", err)
	}
	if v := f.c.CheckInvariants(true); len(v) != 0 {
		f.t.Errorf("invariants: %v", v)
	}
}

// waitState polls until host reaches want or the deadline passes.
func (f *fix) waitState(env *sim.Env, host rpc.HostID, want HostState, deadline time.Duration) error {
	start := env.Now()
	for f.m.State(host) != want {
		if env.Now()-start > deadline {
			return fmt.Errorf("host %v stuck in %v at %v, want %v",
				host, f.m.State(host), env.Now(), want)
		}
		if err := env.Sleep(f.m.Params().Tick); err != nil {
			return err
		}
	}
	return nil
}

// probeOK/probeFail feed synthetic liveness-probe results.
func (f *fix) probeOK(env *sim.Env, host rpc.HostID)   { f.m.ObserveProbe(host, true, env.Now()) }
func (f *fix) probeFail(env *sim.Env, host rpc.HostID) { f.m.ObserveProbe(host, false, env.Now()) }

// readmit drives a host sitting in Readmitting back to Active with clean
// probes.
func (f *fix) readmit(env *sim.Env, host rpc.HostID) error {
	if err := f.waitState(env, host, Readmitting, 200*time.Millisecond); err != nil {
		return err
	}
	for i := 0; i < f.m.Params().CleanProbes; i++ {
		f.probeOK(env, host)
	}
	return f.waitState(env, host, Active, 200*time.Millisecond)
}

func (f *fix) counter(name string) int64 { return f.c.Metrics().Counter(name).Value() }

// spinProc starts a compute-then-exit process on the given kernel.
func spinProc(env *sim.Env, k *core.Kernel, name string, d time.Duration) (*core.Process, error) {
	return k.StartProcess(env, name, func(ctx *core.Ctx) error {
		if err := ctx.Compute(d); err != nil {
			return err
		}
		return ctx.Exit(0)
	}, smallProc)
}

// TestDrainStateMachine is the S3 table: every transition of the
// cordon/drain machine, each case one scenario against a live cluster.
func TestDrainStateMachine(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{name: "health-cordon", run: func(t *testing.T) {
			// Active → Cordoned on a health-score collapse from missed probes.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1).Host()
			f.run(func(env *sim.Env) error {
				for i := 0; i < 4; i++ {
					f.probeFail(env, victim)
				}
				if err := f.waitState(env, victim, Cordoned, 100*time.Millisecond); err != nil {
					return err
				}
				if f.sel.avail[victim] {
					t.Error("cordoned host still advertised to the selector")
				}
				return nil
			})
			if got := f.counter("fleet.cordons"); got != 1 {
				t.Errorf("fleet.cordons = %d, want 1", got)
			}
		}},
		{name: "cordon-recovers-before-grace", run: func(t *testing.T) {
			// Cordoned → Active when the signals decay inside the grace
			// period: a transient dip never drains.
			p := fastParams()
			p.CordonGrace = 300 * time.Millisecond
			f := newFix(t, 3, p)
			victim := f.c.Workstation(1).Host()
			f.run(func(env *sim.Env) error {
				for i := 0; i < 4; i++ {
					f.probeFail(env, victim)
				}
				if err := f.waitState(env, victim, Cordoned, 100*time.Millisecond); err != nil {
					return err
				}
				if err := f.waitState(env, victim, Active, 400*time.Millisecond); err != nil {
					return err
				}
				if !f.sel.avail[victim] {
					t.Error("readmitted host not offered back to the selector")
				}
				return nil
			})
			if got := f.counter("fleet.uncordons"); got != 1 {
				t.Errorf("fleet.uncordons = %d, want 1", got)
			}
			if got := f.counter("fleet.drains.started"); got != 0 {
				t.Errorf("fleet.drains.started = %d, want 0", got)
			}
		}},
		{name: "full-lifecycle-foreign-resident-goes-home", run: func(t *testing.T) {
			// Manual cordon → grace → drain (foreign resident returns home,
			// the paper's eviction path) → remediation reboot → probation →
			// Active. The resident survives and finishes.
			f := newFix(t, 3, fastParams())
			home := f.c.Workstation(0)
			victim := f.c.Workstation(1)
			f.run(func(env *sim.Env) error {
				p, err := spinProc(env, home, "guest", 300*time.Millisecond)
				if err != nil {
					return err
				}
				if _, err := home.RequestMigration(p, victim, "setup").Wait(env); err != nil {
					return err
				}
				epochBefore := f.c.HostEpoch(victim.Host())
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.readmit(env, victim.Host()); err != nil {
					return err
				}
				if cur := p.Current(); cur != home {
					t.Errorf("resident on %v after drain, want home %v", cur.Host(), home.Host())
				}
				if ep := f.c.HostEpoch(victim.Host()); ep != epochBefore+1 {
					t.Errorf("victim epoch = %d, want %d (one reboot)", ep, epochBefore+1)
				}
				status, err := p.Exited().Wait(env)
				if err != nil {
					return err
				}
				if status != 0 {
					t.Errorf("resident exit status = %v, want 0", status)
				}
				return nil
			})
			for name, want := range map[string]int64{
				"fleet.cordons":          1,
				"fleet.drains.started":   1,
				"fleet.drains.completed": 1,
				"fleet.procs.migrated":   1,
				"fleet.remediations":     1,
				"fleet.readmissions":     1,
			} {
				if got := f.counter(name); got != want {
					t.Errorf("%s = %d, want %d", name, got, want)
				}
			}
		}},
		{name: "drain-selector-target", run: func(t *testing.T) {
			// A home-resident process has no home to flee to; the drain asks
			// the selector for a destination.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			spare := f.c.Workstation(2).Host()
			f.run(func(env *sim.Env) error {
				// Keep the first workstation out of the pool so the grant is
				// forced to the spare and the assertion is exact.
				f.sel.avail[f.c.Workstation(0).Host()] = false
				p, err := spinProc(env, victim, "local", 400*time.Millisecond)
				if err != nil {
					return err
				}
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Remediating, 300*time.Millisecond); err != nil {
					// Remediation may already have passed; Readmitting is fine.
					if err2 := f.waitState(env, victim.Host(), Readmitting, 50*time.Millisecond); err2 != nil {
						return err
					}
				}
				if cur := p.Current().Host(); cur != spare {
					t.Errorf("resident on %v after drain, want %v", cur, spare)
				}
				return f.readmit(env, victim.Host())
			})
			if got := f.counter("fleet.procs.migrated"); got != 1 {
				t.Errorf("fleet.procs.migrated = %d, want 1", got)
			}
		}},
		{name: "drain-interrupted-by-target-crash", run: func(t *testing.T) {
			// The only viable target is down when the drain starts: the
			// drain stalls without losing the resident, then finishes once
			// the target comes back.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			spare := f.c.Workstation(2).Host()
			f.run(func(env *sim.Env) error {
				f.sel.avail[f.c.Workstation(0).Host()] = false
				p, err := spinProc(env, victim, "stranded", 600*time.Millisecond)
				if err != nil {
					return err
				}
				f.c.CrashHost(env, spare)
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Draining, 100*time.Millisecond); err != nil {
					return err
				}
				// A few passes with the target dead: still draining, resident
				// still alive on the victim.
				if err := env.Sleep(30 * time.Millisecond); err != nil {
					return err
				}
				if st := f.m.State(victim.Host()); st != Draining {
					t.Errorf("state with dead target = %v, want draining", st)
				}
				if p.State() == core.StateExited {
					t.Error("resident died while the drain was stalled")
				}
				f.c.RestartHost(env, spare)
				if err := f.readmit(env, victim.Host()); err != nil {
					return err
				}
				if cur := p.Current().Host(); cur != spare {
					t.Errorf("resident on %v, want %v after target restart", cur, spare)
				}
				return nil
			})
		}},
		{name: "drain-failpoint-stalls", run: func(t *testing.T) {
			// An injected fleet.drain fault stalls the pass (counted) but
			// loses nothing; clearing it lets the drain finish.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			armed := true
			f.c.SetFailpoint(func(env *sim.Env, name string, pid core.PID) error {
				if armed && name == "fleet.drain" {
					return errors.New("injected drain stall")
				}
				return nil
			})
			f.run(func(env *sim.Env) error {
				p, err := spinProc(env, victim, "patient", 500*time.Millisecond)
				if err != nil {
					return err
				}
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Draining, 100*time.Millisecond); err != nil {
					return err
				}
				if err := env.Sleep(40 * time.Millisecond); err != nil {
					return err
				}
				if st := f.m.State(victim.Host()); st != Draining {
					t.Errorf("state under drain failpoint = %v, want draining", st)
				}
				if p.State() == core.StateExited {
					t.Error("resident lost during stalled drain")
				}
				armed = false
				return f.readmit(env, victim.Host())
			})
			if got := f.counter("fleet.drain.stalls"); got == 0 {
				t.Error("fleet.drain.stalls = 0, want > 0")
			}
			if got := f.counter("fleet.drains.completed"); got != 1 {
				t.Errorf("fleet.drains.completed = %d, want 1", got)
			}
		}},
		{name: "remediate-failpoint-retries", run: func(t *testing.T) {
			// An injected fleet.remediate fault keeps the host parked in
			// Remediating; the reboot happens once the fault clears.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			armed := true
			f.c.SetFailpoint(func(env *sim.Env, name string, pid core.PID) error {
				if armed && name == "fleet.remediate" {
					return errors.New("injected remediation failure")
				}
				return nil
			})
			f.run(func(env *sim.Env) error {
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Remediating, 200*time.Millisecond); err != nil {
					return err
				}
				if err := env.Sleep(30 * time.Millisecond); err != nil {
					return err
				}
				if st := f.m.State(victim.Host()); st != Remediating {
					t.Errorf("state under remediate failpoint = %v, want remediating", st)
				}
				if got := f.counter("fleet.remediations"); got != 0 {
					t.Errorf("fleet.remediations = %d before fault cleared, want 0", got)
				}
				armed = false
				return f.readmit(env, victim.Host())
			})
			if got := f.counter("fleet.remediations"); got != 1 {
				t.Errorf("fleet.remediations = %d, want 1", got)
			}
		}},
		{name: "readmit-failpoint-resets-probation", run: func(t *testing.T) {
			// An injected fleet.readmit fault resets the clean-probe count:
			// probation starts over until the fault clears.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			armed := true
			f.c.SetFailpoint(func(env *sim.Env, name string, pid core.PID) error {
				if armed && name == "fleet.readmit" {
					return errors.New("injected readmission failure")
				}
				return nil
			})
			f.run(func(env *sim.Env) error {
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Readmitting, 200*time.Millisecond); err != nil {
					return err
				}
				for i := 0; i < 6; i++ {
					f.probeOK(env, victim.Host())
					if err := env.Sleep(f.m.Params().Tick); err != nil {
						return err
					}
				}
				if st := f.m.State(victim.Host()); st != Readmitting {
					t.Errorf("state under readmit failpoint = %v, want readmitting", st)
				}
				armed = false
				return f.readmit(env, victim.Host())
			})
			if got := f.counter("fleet.probation.resets"); got == 0 {
				t.Error("fleet.probation.resets = 0, want > 0")
			}
			if got := f.counter("fleet.readmissions"); got != 1 {
				t.Errorf("fleet.readmissions = %d, want 1", got)
			}
		}},
		{name: "readmit-probe-failure-resets-probation", run: func(t *testing.T) {
			// A failed probe during probation wipes the clean streak.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			f.run(func(env *sim.Env) error {
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Readmitting, 200*time.Millisecond); err != nil {
					return err
				}
				f.probeOK(env, victim.Host())
				f.probeFail(env, victim.Host()) // streak of 1, wiped
				if err := env.Sleep(2 * f.m.Params().Tick); err != nil {
					return err
				}
				if st := f.m.State(victim.Host()); st != Readmitting {
					t.Errorf("state after probe failure = %v, want readmitting", st)
				}
				return f.readmit(env, victim.Host())
			})
			if got := f.counter("fleet.probation.resets"); got != 1 {
				t.Errorf("fleet.probation.resets = %d, want 1", got)
			}
		}},
		{name: "cordoned-host-crashes", run: func(t *testing.T) {
			// Cordoned → Remediating directly when the host dies during the
			// grace period: there is nothing left to drain.
			p := fastParams()
			p.CordonGrace = 200 * time.Millisecond
			f := newFix(t, 3, p)
			victim := f.c.Workstation(1).Host()
			f.run(func(env *sim.Env) error {
				f.m.Cordon(env, victim, "test")
				if err := f.waitState(env, victim, Cordoned, 100*time.Millisecond); err != nil {
					return err
				}
				f.c.CrashHost(env, victim)
				return f.readmit(env, victim)
			})
			if got := f.counter("fleet.drains.started"); got != 0 {
				t.Errorf("fleet.drains.started = %d, want 0 (host died cordoned)", got)
			}
			if got := f.counter("fleet.remediations"); got != 1 {
				t.Errorf("fleet.remediations = %d, want 1", got)
			}
		}},
		{name: "draining-host-crashes", run: func(t *testing.T) {
			// The host dies mid-drain: remaining residents are the recovery
			// plane's problem, the drain closes as crashed and remediation
			// restarts the machine.
			f := newFix(t, 3, fastParams())
			victim := f.c.Workstation(1)
			f.run(func(env *sim.Env) error {
				// No targets anywhere: the drain must stall until the crash.
				for _, k := range f.c.Workstations() {
					if k != victim {
						f.sel.avail[k.Host()] = false
					}
				}
				if _, err := spinProc(env, victim, "doomed", 600*time.Millisecond); err != nil {
					return err
				}
				f.m.Cordon(env, victim.Host(), "test")
				if err := f.waitState(env, victim.Host(), Draining, 100*time.Millisecond); err != nil {
					return err
				}
				f.c.CrashHost(env, victim.Host())
				return f.readmit(env, victim.Host())
			})
			if got := f.counter("fleet.drains.completed"); got != 1 {
				t.Errorf("fleet.drains.completed = %d, want 1", got)
			}
		}},
		{name: "supervised-home-resident-evacuates", run: func(t *testing.T) {
			// A supervised job resident at its home cannot shed the home
			// dependency by live migration: the drain falls back to the
			// supervisor's checkpoint/restart evacuation and the work
			// survives the reboot.
			f := newFix(t, 3, fastParams())
			f.c.SetDeferredReap(true)
			victim := f.c.Workstation(1)
			mon := recovery.NewMonitor(f.c, recovery.Params{
				Interval: 10 * time.Millisecond, FailThreshold: 2, Reap: true,
			})
			sup := recovery.NewSupervisor(f.c, mon, recovery.SupervisorParams{
				MaxRestarts:     3,
				CheckpointEvery: 20 * time.Millisecond,
				Dir:             "/ckpt",
				Home:            victim,
			})
			f.m.SetMonitor(mon)
			f.m.SetSupervisor(sup)
			mon.Start()
			var status any
			f.run(func(env *sim.Env) error {
				h, err := sup.Submit(env, "precious", smallProc,
					recovery.ComputeJob(200*time.Millisecond, 10*time.Millisecond))
				if err != nil {
					return err
				}
				if err := env.Sleep(30 * time.Millisecond); err != nil {
					return err
				}
				// Bring the job to its home host so the drain sees a
				// home-resident supervised process.
				pid := h.PID()
				var proc *core.Process
				for _, k := range f.c.Workstations() {
					for _, p := range k.Processes() {
						if p.PID() == pid {
							proc = p
						}
					}
				}
				if proc == nil {
					return fmt.Errorf("job process %v not found", pid)
				}
				if proc.Current() != victim {
					if _, err := proc.Current().RequestMigration(proc, victim, "setup").Wait(env); err != nil {
						return err
					}
				}
				f.m.Cordon(env, victim.Host(), "test")
				// The monitor's live probes drive probation here; no
				// synthetic probes needed.
				if err := f.waitState(env, victim.Host(), Active, time.Second); err != nil {
					return err
				}
				status, err = h.Done().Wait(env)
				if err != nil {
					return err
				}
				mon.Stop()
				sup.Stop()
				return nil
			})
			if status != 0 {
				t.Errorf("evacuated job status = %v, want 0", status)
			}
			if got := f.counter("fleet.procs.evacuated"); got != 1 {
				t.Errorf("fleet.procs.evacuated = %d, want 1", got)
			}
			if got := f.counter("recovery.evacuations"); got == 0 {
				t.Error("recovery.evacuations = 0, want > 0")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t) })
	}
}
