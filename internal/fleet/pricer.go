package fleet

import (
	"time"

	"sprite/internal/rpc"
)

// Pricer estimates each host's expected time-to-eviction, learned online
// from observed eviction inter-arrivals. Hosts are grouped into classes
// (default: one class per host) so sparse histories pool their evidence;
// per class it keeps an EMA of the gaps between evictions. A candidate's
// score is the class's expected gap minus the time already elapsed since
// the host's last eviction — "how much runway is probably left" — floored
// at a small positive value so a host is never priced as instantly doomed.
//
// The economics mirror the paper's observation that recently-reclaimed
// hosts tend to be reclaimed again (owner sessions cluster): placing work
// on a host fresh off an eviction buys the shortest expected run.
type Pricer struct {
	alpha   float64
	horizon time.Duration

	classOf map[rpc.HostID]string
	// ema is the learned eviction inter-arrival per class.
	ema map[string]time.Duration
	// lastEvict is the most recent eviction per host (for elapsed time);
	// lastClassEvict is per class (for inter-arrival learning).
	lastEvict      map[rpc.HostID]time.Duration
	lastClassEvict map[string]time.Duration
}

// NewPricer builds a pricer with EMA gain alpha and optimistic horizon
// for classes with no observed eviction.
func NewPricer(alpha float64, horizon time.Duration) *Pricer {
	return &Pricer{
		alpha:          alpha,
		horizon:        horizon,
		classOf:        make(map[rpc.HostID]string),
		ema:            make(map[string]time.Duration),
		lastEvict:      make(map[rpc.HostID]time.Duration),
		lastClassEvict: make(map[string]time.Duration),
	}
}

// SetClass assigns host to a named class so hosts with shared eviction
// behaviour (same rack, same owner schedule) pool their histories.
func (p *Pricer) SetClass(host rpc.HostID, class string) {
	p.classOf[host] = class
}

func (p *Pricer) class(host rpc.HostID) string {
	if c, ok := p.classOf[host]; ok {
		return c
	}
	return host.String()
}

// ObserveEviction folds one eviction on host at time `at` into the model.
func (p *Pricer) ObserveEviction(host rpc.HostID, at time.Duration) {
	class := p.class(host)
	if last, ok := p.lastClassEvict[class]; ok && at > last {
		gap := at - last
		if prev, ok := p.ema[class]; ok {
			p.ema[class] = time.Duration(float64(prev) + p.alpha*float64(gap-prev))
		} else {
			p.ema[class] = gap
		}
	}
	p.lastClassEvict[class] = at
	p.lastEvict[host] = at
}

// Expected returns the learned eviction inter-arrival for host's class,
// or the optimistic horizon if nothing has been observed yet.
func (p *Pricer) Expected(host rpc.HostID) time.Duration {
	if ema, ok := p.ema[p.class(host)]; ok {
		return ema
	}
	return p.horizon
}

// Score returns host's expected remaining runway at time now: the class's
// expected inter-arrival minus the time since the host's last eviction,
// floored at 1/8 of the expectation (a host overdue for an eviction is
// cheap, not worthless). Higher is better.
func (p *Pricer) Score(host rpc.HostID, now time.Duration) time.Duration {
	exp := p.Expected(host)
	floor := exp / 8
	last, ok := p.lastEvict[host]
	if !ok {
		return exp
	}
	left := exp - (now - last)
	if left < floor {
		return floor
	}
	return left
}
