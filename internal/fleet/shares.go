package fleet

import (
	"sort"
	"time"

	"sprite/internal/rpc"
)

// ShareLedger meters how much harvested host-time each user has consumed,
// so one greedy client cannot monopolize the idle pool. Usage is charged
// as host-hold time: a grant opens a meter, a release closes it and adds
// the hold to the user's account. Allow compares a user's total (booked
// plus currently running meters) against the least-charged user; a spread
// beyond the slack denies new grants until the laggards catch up —
// max-min fairness with a hysteresis band.
//
// A slack of zero or less disables throttling (the ledger still accounts).
type ShareLedger struct {
	slack time.Duration
	// booked is closed-meter usage per user.
	booked map[string]time.Duration
	// open is the running meters: per user, per held host, the grant time.
	open map[string]map[rpc.HostID]time.Duration
}

// NewShareLedger builds a ledger with the given spread tolerance.
func NewShareLedger(slack time.Duration) *ShareLedger {
	return &ShareLedger{
		slack:  slack,
		booked: make(map[string]time.Duration),
		open:   make(map[string]map[rpc.HostID]time.Duration),
	}
}

// Acquire opens a meter: user took host at time now.
func (l *ShareLedger) Acquire(user string, host rpc.HostID, now time.Duration) {
	m := l.open[user]
	if m == nil {
		m = make(map[rpc.HostID]time.Duration)
		l.open[user] = m
	}
	if _, running := m[host]; !running {
		m[host] = now
	}
	// Denominators matter: a user becomes visible to min() on first touch.
	if _, ok := l.booked[user]; !ok {
		l.booked[user] = 0
	}
}

// Release closes the meter for (user, host) and books the hold time.
func (l *ShareLedger) Release(user string, host rpc.HostID, now time.Duration) {
	m := l.open[user]
	if m == nil {
		return
	}
	start, ok := m[host]
	if !ok {
		return
	}
	delete(m, host)
	l.booked[user] += now - start
}

// Usage returns user's total charged time as of now, open meters included.
func (l *ShareLedger) Usage(user string, now time.Duration) time.Duration {
	total := l.booked[user]
	for _, start := range l.open[user] {
		total += now - start
	}
	return total
}

// Allow reports whether user may take another host: its booked usage must
// not exceed the least-booked known user's by more than the slack. The min
// is taken over users in sorted order — the fold itself is commutative, but
// walking the ledger deterministically keeps the whole decision path free
// of map-order influence by construction, not by argument.
func (l *ShareLedger) Allow(user string) bool {
	if l.slack <= 0 {
		return true
	}
	if len(l.booked) == 0 {
		return true
	}
	mine, known := l.booked[user]
	if !known {
		return true // first grant is always allowed
	}
	users := make([]string, 0, len(l.booked))
	for u := range l.booked {
		users = append(users, u)
	}
	sort.Strings(users)
	min := mine
	for _, u := range users {
		if v := l.booked[u]; v < min {
			min = v
		}
	}
	return mine-min <= l.slack
}
