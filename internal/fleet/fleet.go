// Package fleet is the pool-management plane layered over host selection,
// recovery, and migration: idle harvesting run as an economy rather than a
// per-host courtesy (DESIGN.md §15).
//
// The Sprite paper's eviction story ends at "the owner came back, migrate
// everything home". At fleet scale hosts also get sick, flap, and vanish
// in correlated bursts, so this package adds the three planes a real pool
// manager needs:
//
//   - A health plane: per-host signals — missed liveness probes (from the
//     recovery Monitor), eviction-hint rate (from the gossip selector),
//     and migration-abort counts (from kernel stats) — folded into one
//     deterministic health score with exponential decay.
//   - A cordon/drain state machine per host: Active → Cordoned → Draining
//     → Remediating → Readmitting → Active. Draining migrates every
//     resident process off (targets through hostsel, checkpoint/restart
//     through the recovery Supervisor when no host accepts), remediation
//     reboots the host, and readmission requires N consecutive clean
//     probes.
//   - Preemption-aware placement: a Pricer scoring candidate hosts by
//     expected time-to-eviction (learned online from observed eviction
//     inter-arrivals per host class), exposed to hostsel as a placement
//     filter, plus a per-user fairness ledger so competing users harvest
//     idle cycles proportionally.
//
// Every decision the manager takes is driven by virtual time and sorted
// host order, so runs are bit-for-bit reproducible; the drain-safety
// audit (no resident lost, none double-placed, drained host ends empty)
// registers into Cluster.CheckInvariants like the hostsel claim ledger.
//
// The plane drives Cluster.Reboot, so it requires a non-confined cluster
// (the confined contract excludes the crash/restart plane, DESIGN.md §14).
package fleet

import (
	"sort"
	"sync"
	"time"

	"sprite/internal/core"
	"sprite/internal/hostsel"
	"sprite/internal/metrics"
	"sprite/internal/recovery"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// HostState is a managed host's position in the cordon/drain machine.
type HostState int

// The cordon/drain states.
const (
	// Active: healthy, placeable, harvesting idle cycles.
	Active HostState = iota
	// Cordoned: withdrawn from placement; residents keep running during
	// the grace period in case the health dip is transient.
	Cordoned
	// Draining: every resident is being moved off — live migration first,
	// checkpoint/restart evacuation when no host accepts.
	Draining
	// Remediating: the host is empty and being power-cycled.
	Remediating
	// Readmitting: rebooted, on probation until enough clean probes.
	Readmitting
)

func (s HostState) String() string {
	switch s {
	case Active:
		return "active"
	case Cordoned:
		return "cordoned"
	case Draining:
		return "draining"
	case Remediating:
		return "remediating"
	case Readmitting:
		return "readmitting"
	default:
		return "?"
	}
}

// Params configures the fleet manager.
type Params struct {
	// Tick is the controller cadence.
	Tick time.Duration
	// CordonThreshold is the health score below which an Active host is
	// cordoned (scores live in [0,100]; 100 = pristine).
	CordonThreshold float64
	// CordonGrace is how long a cordoned host may recover before the
	// drain starts. A host whose score climbs back above the threshold
	// during the grace period is readmitted without draining.
	CordonGrace time.Duration
	// DrainPassTimeout bounds how long one drain pass waits for one
	// resident's migration before moving on (the request stays pending).
	DrainPassTimeout time.Duration
	// CleanProbes is how many consecutive successful liveness probes a
	// remediated host needs to be readmitted.
	CleanProbes int
	// HalfLife is the health signals' exponential-decay half-life.
	HalfLife time.Duration
	// ProbeWeight, HintWeight, AbortWeight scale the three signals into
	// score penalties.
	ProbeWeight float64
	HintWeight  float64
	AbortWeight float64
	// FairnessSlack is the per-user usage spread tolerated before the
	// ledger denies further grants (0 disables fairness throttling).
	FairnessSlack time.Duration
	// PricerAlpha is the EMA gain for eviction inter-arrival learning.
	PricerAlpha float64
	// PricerHorizon is the optimistic time-to-eviction assumed for host
	// classes with no observed eviction yet.
	PricerHorizon time.Duration
	// PlacementSlack is how many extra candidates each filtered selection
	// requests so vetoes do not starve the caller.
	PlacementSlack int
}

// DefaultParams returns a configuration matched to the default monitor
// cadence (20 ms probes).
func DefaultParams() Params {
	return Params{
		Tick:             25 * time.Millisecond,
		CordonThreshold:  55,
		CordonGrace:      50 * time.Millisecond,
		DrainPassTimeout: 100 * time.Millisecond,
		CleanProbes:      3,
		HalfLife:         250 * time.Millisecond,
		ProbeWeight:      18,
		HintWeight:       3,
		AbortWeight:      12,
		PricerAlpha:      0.3,
		PricerHorizon:    10 * time.Minute,
		PlacementSlack:   2,
	}
}

// hostRec is the manager's per-host record.
type hostRec struct {
	host  rpc.HostID
	state HostState
	since time.Duration // when the current state was entered

	probes signal // missed liveness probes
	hints  signal // eviction hints retracting this host
	aborts signal // outbound migration aborts

	lastAborts  uint64 // last KernelStats.MigrationsAborted reading
	cleanProbes int    // consecutive ok probes while Readmitting
	reason      string // why the host was cordoned
	drain       *drainRec
}

// Manager runs the fleet plane: one controller activity folding health
// signals and stepping every managed host's state machine in sorted host
// order each tick.
type Manager struct {
	c *core.Cluster
	p Params

	mon    *recovery.Monitor
	sel    hostsel.Selector
	sup    *recovery.Supervisor
	reboot func(env *sim.Env, host rpc.HostID)
	userOf func(client rpc.HostID) string

	pricer *Pricer
	shares *ShareLedger
	audit  *drainAudit

	hosts []rpc.HostID
	recs  map[rpc.HostID]*hostRec

	// hintMu guards hintPending: the gossip hint sink runs in RPC handler
	// activities, which may execute on confined shards under the parallel
	// kernel; counts are commutative, so folding them at the controller's
	// (exclusive, barrier-ordered) tick stays deterministic.
	hintMu      sync.Mutex
	hintPending map[rpc.HostID]int

	stopped bool

	cordons         *metrics.Counter
	uncordons       *metrics.Counter
	drainsStarted   *metrics.Counter
	drainsCompleted *metrics.Counter
	remediations    *metrics.Counter
	readmissions    *metrics.Counter
	probationResets *metrics.Counter
	migratedC       *metrics.Counter
	evacuatedC      *metrics.Counter
	exitedC         *metrics.Counter
	stallsC         *metrics.Counter
	deniedC         *metrics.Counter
	drainLatency    *metrics.Timing
}

// New builds a fleet manager over the cluster's workstations. Wire the
// signal sources with SetMonitor / SetSelector / SetSupervisor /
// SetRebooter before Start; the drain-safety audit registers into
// CheckInvariants immediately.
func New(c *core.Cluster, p Params) *Manager {
	def := DefaultParams()
	if p.Tick <= 0 {
		p.Tick = def.Tick
	}
	if p.CordonThreshold <= 0 {
		p.CordonThreshold = def.CordonThreshold
	}
	if p.CordonGrace <= 0 {
		p.CordonGrace = def.CordonGrace
	}
	if p.DrainPassTimeout <= 0 {
		p.DrainPassTimeout = def.DrainPassTimeout
	}
	if p.CleanProbes <= 0 {
		p.CleanProbes = def.CleanProbes
	}
	if p.HalfLife <= 0 {
		p.HalfLife = def.HalfLife
	}
	if p.ProbeWeight <= 0 {
		p.ProbeWeight = def.ProbeWeight
	}
	if p.HintWeight <= 0 {
		p.HintWeight = def.HintWeight
	}
	if p.AbortWeight <= 0 {
		p.AbortWeight = def.AbortWeight
	}
	if p.PricerAlpha <= 0 || p.PricerAlpha > 1 {
		p.PricerAlpha = def.PricerAlpha
	}
	if p.PricerHorizon <= 0 {
		p.PricerHorizon = def.PricerHorizon
	}
	if p.PlacementSlack < 0 {
		p.PlacementSlack = def.PlacementSlack
	}
	reg := c.Metrics()
	m := &Manager{
		c:           c,
		p:           p,
		reboot:      func(env *sim.Env, host rpc.HostID) { c.Reboot(env, host) },
		userOf:      func(client rpc.HostID) string { return client.String() },
		pricer:      NewPricer(p.PricerAlpha, p.PricerHorizon),
		shares:      NewShareLedger(p.FairnessSlack),
		audit:       newDrainAudit(),
		recs:        make(map[rpc.HostID]*hostRec),
		hintPending: make(map[rpc.HostID]int),

		cordons:         reg.Counter("fleet.cordons"),
		uncordons:       reg.Counter("fleet.uncordons"),
		drainsStarted:   reg.Counter("fleet.drains.started"),
		drainsCompleted: reg.Counter("fleet.drains.completed"),
		remediations:    reg.Counter("fleet.remediations"),
		readmissions:    reg.Counter("fleet.readmissions"),
		probationResets: reg.Counter("fleet.probation.resets"),
		migratedC:       reg.Counter("fleet.procs.migrated"),
		evacuatedC:      reg.Counter("fleet.procs.evacuated"),
		exitedC:         reg.Counter("fleet.procs.exited"),
		stallsC:         reg.Counter("fleet.drain.stalls"),
		deniedC:         reg.Counter("fleet.fairness.denied"),
		drainLatency:    reg.Timing("fleet.drain_latency"),
	}
	for _, k := range c.Workstations() {
		h := k.Host()
		m.hosts = append(m.hosts, h)
		m.recs[h] = &hostRec{host: h, state: Active}
	}
	sort.Slice(m.hosts, func(i, j int) bool { return m.hosts[i] < m.hosts[j] })
	m.audit.register(c, m)
	return m
}

// Params returns the manager's configuration.
func (m *Manager) Params() Params { return m.p }

// Pricer returns the manager's time-to-eviction model.
func (m *Manager) Pricer() *Pricer { return m.pricer }

// Shares returns the manager's fairness ledger.
func (m *Manager) Shares() *ShareLedger { return m.shares }

// SetMonitor attaches the liveness monitor: its per-probe results feed the
// missed-probe health signal and readmission probation, and its HostDown
// declarations feed the pricer's eviction model.
func (m *Manager) SetMonitor(mon *recovery.Monitor) {
	m.mon = mon
	mon.SetProbeObserver(m.ObserveProbe)
	mon.Subscribe(func(ev recovery.Event) {
		if ev.Kind == recovery.HostDown {
			m.pricer.ObserveEviction(ev.Host, ev.At)
		}
	})
}

// SetSelector attaches the host-selection architecture drains pick targets
// through. Pass the raw selector; wrap the one placement goes through with
// WrapSelector so cordoned hosts stay out of the pool.
func (m *Manager) SetSelector(sel hostsel.Selector) { m.sel = sel }

// SetSupervisor attaches the checkpoint/restart supervisor used as the
// drain fallback when no host accepts a live migration.
func (m *Manager) SetSupervisor(sup *recovery.Supervisor) { m.sup = sup }

// SetRebooter overrides how remediation power-cycles a host (default:
// Cluster.Reboot). The fault plane's RebootHost slots in here so chaos
// schedules and remediations share one reboot path.
func (m *Manager) SetRebooter(fn func(env *sim.Env, host rpc.HostID)) { m.reboot = fn }

// SetUserOf overrides how a requesting client maps to a fairness-ledger
// user (default: the client host id's string form).
func (m *Manager) SetUserOf(fn func(client rpc.HostID) string) { m.userOf = fn }

// WatchGossip wires the gossip selector's eviction-hint stream into the
// hint-rate health signal.
func (m *Manager) WatchGossip(p *hostsel.Probabilistic) {
	p.SetHintSink(func(subject rpc.HostID) {
		m.hintMu.Lock()
		m.hintPending[subject]++
		m.hintMu.Unlock()
	})
}

// State returns host's current position in the cordon/drain machine.
func (m *Manager) State(host rpc.HostID) HostState {
	if rec := m.recs[host]; rec != nil {
		return rec.state
	}
	return Active
}

// Score returns host's current health score in [0,100] at time now.
func (m *Manager) Score(host rpc.HostID, now time.Duration) float64 {
	rec := m.recs[host]
	if rec == nil {
		return 100
	}
	score := 100 -
		m.p.ProbeWeight*rec.probes.at(now, m.p.HalfLife) -
		m.p.HintWeight*rec.hints.at(now, m.p.HalfLife) -
		m.p.AbortWeight*rec.aborts.at(now, m.p.HalfLife)
	if score < 0 {
		return 0
	}
	return score
}

// ObserveProbe feeds one liveness-probe result into the health plane. The
// monitor calls it for every ping when attached through SetMonitor; tests
// may call it directly.
func (m *Manager) ObserveProbe(host rpc.HostID, ok bool, at time.Duration) {
	rec := m.recs[host]
	if rec == nil {
		return
	}
	if !ok {
		rec.probes.bump(at, m.p.HalfLife, 1)
		if rec.state == Readmitting && rec.cleanProbes > 0 {
			rec.cleanProbes = 0
			m.probationResets.Inc()
		}
		return
	}
	if rec.state == Readmitting {
		rec.cleanProbes++
	}
}

// NoteEviction reports an owner-return eviction on host at time `at`,
// feeding the pricer's inter-arrival model. Workload drivers call it when
// they trigger EvictAll.
func (m *Manager) NoteEviction(host rpc.HostID, at time.Duration) {
	m.pricer.ObserveEviction(host, at)
}

// Start boots the controller activity. Call before the cluster runs.
func (m *Manager) Start() {
	m.c.Boot("fleet-controller", m.run)
}

// Stop makes the controller exit at its next tick.
func (m *Manager) Stop() { m.stopped = true }

func (m *Manager) run(env *sim.Env) error {
	for {
		if err := env.Sleep(m.p.Tick); err != nil {
			return nil // the simulation is unwinding
		}
		if m.stopped {
			return nil
		}
		m.tick(env)
	}
}

// tick folds pending signals and steps every host's state machine, in
// sorted host order for determinism.
func (m *Manager) tick(env *sim.Env) {
	now := env.Now()
	m.hintMu.Lock()
	pending := m.hintPending
	m.hintPending = make(map[rpc.HostID]int)
	m.hintMu.Unlock()
	for _, host := range m.hosts {
		rec := m.recs[host]
		if n := pending[host]; n > 0 {
			rec.hints.bump(now, m.p.HalfLife, float64(n))
		}
		if k := m.c.KernelOn(host); k != nil {
			if ab := k.Stats().MigrationsAborted; ab > rec.lastAborts {
				rec.aborts.bump(now, m.p.HalfLife, float64(ab-rec.lastAborts))
				rec.lastAborts = ab
			}
		}
	}
	for _, host := range m.hosts {
		m.step(env, m.recs[host])
	}
}

// step advances one host through the state machine.
func (m *Manager) step(env *sim.Env, rec *hostRec) {
	now := env.Now()
	switch rec.state {
	case Active:
		if m.Score(rec.host, now) < m.p.CordonThreshold {
			m.cordon(env, rec, "health")
		}
	case Cordoned:
		switch {
		case m.c.HostDown(rec.host):
			// The host died before the drain began: nothing resident
			// survived, go straight to remediation.
			m.enter(rec, Remediating, now)
		case m.Score(rec.host, now) >= m.p.CordonThreshold && rec.reason == "health":
			// The dip was transient; hand the host back without draining.
			m.uncordons.Inc()
			m.enter(rec, Active, now)
			m.offer(env, rec.host)
		case now-rec.since >= m.p.CordonGrace:
			m.startDrain(env, rec)
		}
	case Draining:
		m.drainPass(env, rec)
	case Remediating:
		m.remediate(env, rec)
	case Readmitting:
		m.readmitTick(env, rec)
	}
}

// Cordon withdraws host from placement by hand (operators, tests, and the
// fuzzer's drain-schedule mutations). Reason lands in the audit trail.
func (m *Manager) Cordon(env *sim.Env, host rpc.HostID, reason string) {
	rec := m.recs[host]
	if rec == nil || rec.state != Active {
		return
	}
	if reason == "" {
		reason = "manual"
	}
	m.cordon(env, rec, reason)
}

func (m *Manager) cordon(env *sim.Env, rec *hostRec, reason string) {
	rec.reason = reason
	m.cordons.Inc()
	m.enter(rec, Cordoned, env.Now())
	m.withdraw(env, rec.host)
}

func (m *Manager) enter(rec *hostRec, s HostState, now time.Duration) {
	rec.state = s
	rec.since = now
	if s == Readmitting {
		rec.cleanProbes = 0
	}
}

// withdraw removes host from the selector pool; offer hands it back.
func (m *Manager) withdraw(env *sim.Env, host rpc.HostID) {
	if m.sel != nil {
		_ = m.sel.NotifyAvailability(env, host, false)
	}
}

func (m *Manager) offer(env *sim.Env, host rpc.HostID) {
	if m.sel != nil {
		_ = m.sel.NotifyAvailability(env, host, true)
	}
}

// remediate power-cycles an empty drained host, gated by the
// fleet.remediate failpoint (an injected failure retries next tick).
func (m *Manager) remediate(env *sim.Env, rec *hostRec) {
	if err := m.c.FailAt(env, "fleet.remediate", core.NilPID); err != nil {
		return
	}
	m.reboot(env, rec.host)
	m.remediations.Inc()
	// The reboot starts a new incarnation: its health history is the old
	// machine's, not its own.
	rec.probes = signal{}
	rec.hints = signal{}
	rec.aborts = signal{}
	if k := m.c.KernelOn(rec.host); k != nil {
		rec.lastAborts = k.Stats().MigrationsAborted
	}
	m.enter(rec, Readmitting, env.Now())
}

// readmitTick advances probation: CleanProbes consecutive successful
// probes (counted by ObserveProbe) readmit the host; a failed probe or a
// fleet.readmit failpoint firing resets the count.
func (m *Manager) readmitTick(env *sim.Env, rec *hostRec) {
	if m.c.HostDown(rec.host) {
		if rec.cleanProbes > 0 {
			rec.cleanProbes = 0
			m.probationResets.Inc()
		}
		return
	}
	if err := m.c.FailAt(env, "fleet.readmit", core.NilPID); err != nil {
		if rec.cleanProbes > 0 {
			rec.cleanProbes = 0
			m.probationResets.Inc()
		}
		return
	}
	if rec.cleanProbes >= m.p.CleanProbes {
		m.readmissions.Inc()
		m.enter(rec, Active, env.Now())
		m.offer(env, rec.host)
	}
}

// --- placement filter + fairness accounting ---

// FilterHosts implements hostsel.Filter: only Active hosts pass, ordered
// by the pricer's expected time-to-eviction (longest first, host id as the
// deterministic tiebreak); a user over its fairness share gets nothing.
func (m *Manager) FilterHosts(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) []rpc.HostID {
	if !m.shares.Allow(m.userOf(client)) {
		m.deniedC.Inc()
		return nil
	}
	now := env.Now()
	out := make([]rpc.HostID, 0, len(hosts))
	for _, h := range hosts {
		if rec := m.recs[h]; rec == nil || rec.state == Active {
			out = append(out, h)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := m.pricer.Score(out[i], now), m.pricer.Score(out[j], now)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// WrapSelector layers the fleet plane over a selector: grants are filtered
// through FilterHosts (state + pricer + fairness) and charged to the
// fairness ledger until released.
func (m *Manager) WrapSelector(sel hostsel.Selector) hostsel.Selector {
	return &fairSelector{m: m, inner: hostsel.WithFilter(sel, m, m.p.PlacementSlack)}
}

// fairSelector charges the fairness ledger for the hold time of every
// granted host.
type fairSelector struct {
	m     *Manager
	inner hostsel.Selector
}

var _ hostsel.Selector = (*fairSelector)(nil)

func (f *fairSelector) Name() string { return f.inner.Name() }

func (f *fairSelector) RequestHosts(env *sim.Env, client rpc.HostID, n int) ([]rpc.HostID, error) {
	hosts, err := f.inner.RequestHosts(env, client, n)
	user := f.m.userOf(client)
	for _, h := range hosts {
		f.m.shares.Acquire(user, h, env.Now())
	}
	return hosts, err
}

func (f *fairSelector) Release(env *sim.Env, client rpc.HostID, hosts []rpc.HostID) error {
	user := f.m.userOf(client)
	for _, h := range hosts {
		f.m.shares.Release(user, h, env.Now())
	}
	return f.inner.Release(env, client, hosts)
}

func (f *fairSelector) NotifyAvailability(env *sim.Env, host rpc.HostID, available bool) error {
	return f.inner.NotifyAvailability(env, host, available)
}

func (f *fairSelector) Stats() hostsel.Stats { return f.inner.Stats() }
