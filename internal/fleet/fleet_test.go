package fleet

import (
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

func TestSignalDecay(t *testing.T) {
	var s signal
	half := 100 * time.Millisecond
	s.bump(0, half, 4)
	if got := s.at(0, half); got != 4 {
		t.Errorf("at(0) = %v, want 4", got)
	}
	if got := s.at(100*time.Millisecond, half); got < 1.99 || got > 2.01 {
		t.Errorf("at(half-life) = %v, want ~2", got)
	}
	if got := s.at(300*time.Millisecond, half); got < 0.49 || got > 0.51 {
		t.Errorf("at(3 half-lives) = %v, want ~0.5", got)
	}
	// A later bump folds the decayed remainder in.
	s.bump(100*time.Millisecond, half, 1)
	if got := s.at(100*time.Millisecond, half); got < 2.99 || got > 3.01 {
		t.Errorf("after second bump = %v, want ~3", got)
	}
}

func TestPricerLearnsInterArrivals(t *testing.T) {
	p := NewPricer(0.5, time.Hour)
	a, b := rpc.HostID(101), rpc.HostID(102)
	// No history: the optimistic horizon.
	if got := p.Score(a, 0); got != time.Hour {
		t.Errorf("unseen score = %v, want 1h", got)
	}
	// Two evictions 10s apart on a: the class EMA seeds at the gap.
	p.ObserveEviction(a, 10*time.Second)
	p.ObserveEviction(a, 20*time.Second)
	if got := p.Expected(a); got != 10*time.Second {
		t.Errorf("expected gap = %v, want 10s", got)
	}
	// Right after an eviction the full runway remains; it shrinks as time
	// passes and floors at 1/8 of the expectation.
	if got := p.Score(a, 20*time.Second); got != 10*time.Second {
		t.Errorf("score right after eviction = %v, want 10s", got)
	}
	if got := p.Score(a, 26*time.Second); got != 4*time.Second {
		t.Errorf("score 6s in = %v, want 4s", got)
	}
	if got := p.Score(a, 2*time.Minute); got != 10*time.Second/8 {
		t.Errorf("overdue score = %v, want floor %v", got, 10*time.Second/8)
	}
	// b has no history and outranks the recently-evicted a.
	if p.Score(b, 21*time.Second) <= p.Score(a, 21*time.Second) {
		t.Error("fresh host should outrank a recently-evicted one")
	}
	// Class pooling: hosts sharing a class share the learned gap.
	c, d := rpc.HostID(201), rpc.HostID(202)
	p.SetClass(c, "rack")
	p.SetClass(d, "rack")
	p.ObserveEviction(c, 0)
	p.ObserveEviction(d, 30*time.Second)
	if got := p.Expected(c); got != 30*time.Second {
		t.Errorf("pooled expectation = %v, want 30s", got)
	}
}

func TestShareLedger(t *testing.T) {
	l := NewShareLedger(100 * time.Millisecond)
	h1, h2 := rpc.HostID(1), rpc.HostID(2)
	if !l.Allow("alice") {
		t.Error("empty ledger must allow")
	}
	l.Acquire("alice", h1, 0)
	l.Release("alice", h1, 250*time.Millisecond)
	if got := l.Usage("alice", 250*time.Millisecond); got != 250*time.Millisecond {
		t.Errorf("usage = %v, want 250ms", got)
	}
	// Bob has used nothing: alice is 250ms ahead, beyond the 100ms slack.
	l.Acquire("bob", h2, 250*time.Millisecond)
	l.Release("bob", h2, 260*time.Millisecond)
	if l.Allow("alice") {
		t.Error("alice is over her share and must be denied")
	}
	if !l.Allow("bob") {
		t.Error("bob is the least-charged user and must be allowed")
	}
	// Bob catches up; alice is inside the slack again.
	l.Acquire("bob", h2, 300*time.Millisecond)
	l.Release("bob", h2, 500*time.Millisecond)
	if !l.Allow("alice") {
		t.Error("alice back inside the slack must be allowed")
	}
	// Open meters count toward usage but not Allow (booked-only).
	l.Acquire("alice", h1, 500*time.Millisecond)
	if got := l.Usage("alice", 600*time.Millisecond); got != 350*time.Millisecond {
		t.Errorf("usage with open meter = %v, want 350ms", got)
	}
	// Zero slack disables throttling.
	free := NewShareLedger(0)
	free.Acquire("x", h1, 0)
	free.Release("x", h1, time.Hour)
	if !free.Allow("x") {
		t.Error("zero-slack ledger must always allow")
	}
}

// TestFilterHostsStateAndPricing: only Active hosts pass the placement
// filter, ordered by expected runway; a user over its fairness share is
// denied outright.
func TestFilterHostsStateAndPricing(t *testing.T) {
	f := newFix(t, 4, fastParams())
	hosts := make([]rpc.HostID, 0, 4)
	for _, k := range f.c.Workstations() {
		hosts = append(hosts, k.Host())
	}
	client := hosts[0]
	f.run(func(env *sim.Env) error {
		// Cordon one host: it must vanish from placement.
		f.m.Cordon(env, hosts[1], "test")
		got := f.m.FilterHosts(env, client, hosts)
		for _, h := range got {
			if h == hosts[1] {
				t.Errorf("cordoned host %v passed the filter", h)
			}
		}
		if len(got) != 3 {
			t.Errorf("filtered set = %v, want 3 hosts", got)
		}
		// Two evictions in quick succession on hosts[2] teach the pricer a
		// short inter-arrival, pushing it behind the never-evicted hosts
		// (whose runway is the optimistic horizon).
		f.m.NoteEviction(hosts[2], env.Now())
		if err := env.Sleep(20 * time.Millisecond); err != nil {
			return err
		}
		f.m.NoteEviction(hosts[2], env.Now())
		got = f.m.FilterHosts(env, client, hosts)
		if len(got) != 3 || got[len(got)-1] != hosts[2] {
			t.Errorf("order = %v, want %v last (recently evicted)", got, hosts[2])
		}
		return nil
	})
}

// TestWrapSelectorFairness: the wrapped selector charges hold time to the
// ledger and denies a user who has hogged the pool.
func TestWrapSelectorFairness(t *testing.T) {
	p := fastParams()
	p.FairnessSlack = 50 * time.Millisecond
	f := newFix(t, 4, p)
	wrapped := f.m.WrapSelector(f.sel)
	alice := f.c.Workstation(0).Host()
	bob := f.c.Workstation(1).Host()
	f.run(func(env *sim.Env) error {
		// Bob books a sliver of usage first: users enter the fairness
		// comparison at their first grant.
		bgot0, err := wrapped.RequestHosts(env, bob, 1)
		if err != nil || len(bgot0) != 1 {
			return err
		}
		if err := env.Sleep(10 * time.Millisecond); err != nil {
			return err
		}
		if err := wrapped.Release(env, bob, bgot0); err != nil {
			return err
		}
		got, err := wrapped.RequestHosts(env, alice, 1)
		if err != nil || len(got) != 1 {
			return err
		}
		if err := env.Sleep(200 * time.Millisecond); err != nil {
			return err
		}
		if err := wrapped.Release(env, alice, got); err != nil {
			return err
		}
		// Alice has 200ms booked, bob 10ms: the spread beats the 50ms
		// slack, so alice is denied and bob is allowed.
		if _, err := wrapped.RequestHosts(env, alice, 1); err == nil {
			t.Error("over-share user got a grant, want denial")
		}
		bgot, err := wrapped.RequestHosts(env, bob, 1)
		if err != nil || len(bgot) != 1 {
			t.Errorf("least-charged user denied: %v", err)
			return nil
		}
		return wrapped.Release(env, bob, bgot)
	})
	if got := f.counter("fleet.fairness.denied"); got == 0 {
		t.Error("fleet.fairness.denied = 0, want > 0")
	}
}

// TestManagerDeterministic: the same scenario twice produces the same
// committed event order and metrics — the controller adds no
// nondeterminism.
func TestManagerDeterministic(t *testing.T) {
	run := func() (uint64, string) {
		f := newFix(t, 4, fastParams())
		victim := f.c.Workstation(1)
		f.run(func(env *sim.Env) error {
			p, err := spinProc(env, victim, "wanderer", 300*time.Millisecond)
			if err != nil {
				return err
			}
			_ = p
			f.m.Cordon(env, victim.Host(), "rehearsal")
			if err := f.readmit(env, victim.Host()); err != nil {
				return err
			}
			return env.Sleep(50 * time.Millisecond)
		})
		return f.c.Sim().OrderDigest(), f.c.MetricsSnapshot().Text()
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 {
		t.Errorf("order digests differ:\n  %x\n  %x", d1, d2)
	}
	if m1 != m2 {
		t.Error("metrics snapshots differ between identical runs")
	}
}

var _ = core.NilPID // keep the import used if assertions above change
