package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestParallelRaceStress hammers the handoff machinery the race detector
// must prove clean: many confined shards spread over many workers, each
// shard's daemons fighting over shard-local Queue/Future/Resource objects
// while every shard floods a cross-shard Mailbox into an exclusive
// consumer, and an exclusive chaos activity interrupts confined victims
// mid-window chain. Run under `go test -race` (make race) this is the
// parallel kernel's memory-model audit; the final digests must still match
// the serial oracle.
func TestParallelRaceStress(t *testing.T) {
	const (
		shards  = 16
		daemons = 3
		limit   = 40 * time.Millisecond
	)
	run := func(workers int) (uint64, Stats) {
		s := New(99)
		s.SetLookahead(400 * time.Microsecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		mbox := NewMailbox(s, 500*time.Microsecond)
		s.Spawn("consumer", func(env *Env) error {
			for {
				if _, err := mbox.Recv(env); err != nil {
					return nil
				}
			}
		})

		victims := make([]*Env, 0, shards)
		for sh := 1; sh <= shards; sh++ {
			shard := sh
			q := NewQueue(s)
			res := NewResource(s, 2)
			for d := 0; d < daemons; d++ {
				env := s.SpawnOn(shard, fmt.Sprintf("d%d.%d", shard, d), func(env *Env) error {
					r := env.LocalRand()
					for {
						switch r.Intn(5) {
						case 0:
							if err := env.Sleep(time.Duration(r.Intn(300)+1) * time.Microsecond); err != nil {
								return nil
							}
						case 1:
							q.Send(r.Int())
						case 2:
							if q.Len() > 0 {
								if _, err := q.Recv(env); err != nil {
									return nil
								}
							} else if err := env.Yield(); err != nil {
								return nil
							}
						case 3:
							if err := res.Use(env, time.Duration(r.Intn(200))*time.Microsecond); err != nil {
								return nil
							}
						case 4:
							mbox.Send(env, r.Int())
						}
					}
				})
				victims = append(victims, env)
			}
		}
		s.Spawn("chaos", func(env *Env) error {
			r := env.Rand()
			for i := 0; ; i++ {
				if err := env.Sleep(time.Duration(r.Intn(2000)+500) * time.Microsecond); err != nil {
					return nil
				}
				victims[r.Intn(len(victims))].Interrupt(ErrStopped)
			}
		})
		if err := s.Run(limit); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		digest, stats := s.OrderDigest(), s.Stats()
		s.Stop()
		_ = s.Run(0)
		if n := s.LiveActivities(); n != 0 {
			t.Fatalf("workers=%d leaked %d activities", workers, n)
		}
		return digest, stats
	}

	wantDigest, wantStats := run(0)
	for _, workers := range []int{2, 4, 8} {
		gotDigest, gotStats := run(workers)
		if gotDigest != wantDigest || gotStats != wantStats {
			t.Fatalf("workers=%d diverged: digest %#x vs %#x, stats %+v vs %+v",
				workers, gotDigest, wantDigest, gotStats, wantStats)
		}
	}
}
