package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func run(t *testing.T, s *Simulation) {
	t.Helper()
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := s.LiveActivities(); n != 0 {
		t.Fatalf("leaked %d activities", n)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.Spawn("sleeper", func(env *Env) error {
		if err := env.Sleep(5 * time.Second); err != nil {
			return err
		}
		at = env.Now()
		return nil
	})
	run(t, s)
	if at != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", at)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("sim time %v, want 5s", s.Now())
	}
}

func TestEventOrderingIsDeterministic(t *testing.T) {
	order := func(seed int64) []string {
		s := New(seed)
		var got []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("a%d", i)
			s.Spawn(name, func(env *Env) error {
				if err := env.Sleep(time.Second); err != nil {
					return err
				}
				got = append(got, env.Name())
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return got
	}
	first := order(42)
	second := order(42)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic order: %v vs %v", first, second)
		}
	}
	// Ties at the same timestamp resolve in spawn order.
	want := []string{"a0", "a1", "a2", "a3", "a4"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order %v, want %v", first, want)
		}
	}
}

func TestSpawnFromActivity(t *testing.T) {
	s := New(1)
	var childRan bool
	s.Spawn("parent", func(env *Env) error {
		env.Spawn("child", func(env *Env) error {
			childRan = true
			return nil
		})
		return env.Sleep(time.Millisecond)
	})
	run(t, s)
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestActivityErrorPropagates(t *testing.T) {
	s := New(1)
	want := errors.New("boom")
	s.Spawn("bad", func(env *Env) error { return want })
	if err := s.Run(0); !errors.Is(err, want) {
		t.Fatalf("Run err = %v, want %v", err, want)
	}
}

func TestActivityPanicBecomesError(t *testing.T) {
	s := New(1)
	s.Spawn("panicky", func(env *Env) error { panic("oh no") })
	err := s.Run(0)
	if err == nil {
		t.Fatal("expected error from panicking activity")
	}
}

func TestFutureWakesWaiters(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	var got any
	var wokenAt time.Duration
	s.Spawn("waiter", func(env *Env) error {
		v, err := f.Wait(env)
		if err != nil {
			return err
		}
		got = v
		wokenAt = env.Now()
		return nil
	})
	s.Spawn("completer", func(env *Env) error {
		if err := env.Sleep(3 * time.Second); err != nil {
			return err
		}
		f.Complete(99, nil)
		return nil
	})
	run(t, s)
	if got != 99 {
		t.Fatalf("got %v, want 99", got)
	}
	if wokenAt != 3*time.Second {
		t.Fatalf("woken at %v, want 3s", wokenAt)
	}
}

func TestFutureWaitAfterComplete(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	f.Complete("done", nil)
	var got any
	s.Spawn("late", func(env *Env) error {
		v, err := f.Wait(env)
		got = v
		return err
	})
	run(t, s)
	if got != "done" {
		t.Fatalf("got %v", got)
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	var gotErr error
	var at time.Duration
	s.Spawn("waiter", func(env *Env) error {
		_, gotErr = f.WaitTimeout(env, time.Second)
		at = env.Now()
		return nil
	})
	run(t, s)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if at != time.Second {
		t.Fatalf("timed out at %v, want 1s", at)
	}
}

func TestFutureWaitTimeoutResolvedEarly(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	var got any
	var gotErr error
	s.Spawn("waiter", func(env *Env) error {
		got, gotErr = f.WaitTimeout(env, 10*time.Second)
		return nil
	})
	s.Spawn("completer", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		f.Complete(7, nil)
		return nil
	})
	run(t, s)
	if gotErr != nil || got != 7 {
		t.Fatalf("got %v/%v, want 7/nil", got, gotErr)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New(1)
	q := NewQueue(s)
	var got []int
	s.Spawn("recv", func(env *Env) error {
		for i := 0; i < 3; i++ {
			v, err := q.Recv(env)
			if err != nil {
				return err
			}
			got = append(got, v.(int))
		}
		return nil
	})
	s.Spawn("send", func(env *Env) error {
		for i := 1; i <= 3; i++ {
			if err := env.Sleep(time.Second); err != nil {
				return err
			}
			q.Send(i)
		}
		return nil
	})
	run(t, s)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueCloseWakesReceivers(t *testing.T) {
	s := New(1)
	q := NewQueue(s)
	var gotErr error
	s.Spawn("recv", func(env *Env) error {
		_, gotErr = q.Recv(env)
		return nil
	})
	s.Spawn("closer", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		q.Close()
		return nil
	})
	run(t, s)
	if !errors.Is(gotErr, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", gotErr)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("user%d", i), func(env *Env) error {
			if err := r.Use(env, time.Second); err != nil {
				return err
			}
			ends = append(ends, env.Now())
			return nil
		})
	}
	run(t, s)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.BusyTime() != 3*time.Second {
		t.Fatalf("busy = %v, want 3s", r.BusyTime())
	}
}

func TestResourceMultipleSlots(t *testing.T) {
	s := New(1)
	r := NewResource(s, 2)
	var last time.Duration
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("u%d", i), func(env *Env) error {
			if err := r.Use(env, time.Second); err != nil {
				return err
			}
			if env.Now() > last {
				last = env.Now()
			}
			return nil
		})
	}
	run(t, s)
	if last != 2*time.Second {
		t.Fatalf("last completion %v, want 2s (2 slots)", last)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	var doneAt time.Duration
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Second
		s.Spawn(fmt.Sprintf("w%d", i), func(env *Env) error {
			defer wg.Done()
			return env.Sleep(d)
		})
	}
	s.Spawn("waiter", func(env *Env) error {
		if err := wg.Wait(env); err != nil {
			return err
		}
		doneAt = env.Now()
		return nil
	})
	run(t, s)
	if doneAt != 3*time.Second {
		t.Fatalf("waited until %v, want 3s", doneAt)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(env *Env) error {
			if err := c.Wait(env); err != nil {
				return err
			}
			woken++
			return nil
		})
	}
	s.Spawn("b", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		c.Broadcast()
		return nil
	})
	run(t, s)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	s.Spawn("stuck", func(env *Env) error {
		_, err := f.Wait(env)
		return err
	})
	err := s.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Clean up the parked goroutine.
	s.Stop()
	if err := s.Run(0); err != nil && !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cleanup Run: %v", err)
	}
	if s.LiveActivities() != 0 {
		t.Fatalf("leaked activities after Stop")
	}
}

func TestStopWakesBlockedActivities(t *testing.T) {
	s := New(1)
	q := NewQueue(s)
	var gotErr error
	s.Spawn("recv", func(env *Env) error {
		_, gotErr = q.Recv(env)
		return nil
	})
	s.Spawn("stopper", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		s.Stop()
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", gotErr)
	}
	if s.LiveActivities() != 0 {
		t.Fatal("leaked activities")
	}
}

func TestRunLimitStopsEarly(t *testing.T) {
	s := New(1)
	ticks := 0
	s.Spawn("ticker", func(env *Env) error {
		for i := 0; i < 1000; i++ {
			if err := env.Sleep(time.Second); err != nil {
				return err
			}
			ticks++
		}
		return nil
	})
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("now = %v, want 10s", s.Now())
	}
	s.Stop()
	_ = s.Run(0)
}

func TestAfterCallback(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.After(7*time.Second, func() { at = s.Now() })
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 7*time.Second {
		t.Fatalf("callback at %v, want 7s", at)
	}
}

func TestCPUProcessorSharing(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s, 10*time.Millisecond)
	var ends [2]time.Duration
	for i := 0; i < 2; i++ {
		idx := i
		s.Spawn(fmt.Sprintf("job%d", i), func(env *Env) error {
			if err := cpu.Compute(env, time.Second); err != nil {
				return err
			}
			ends[idx] = env.Now()
			return nil
		})
	}
	run(t, s)
	// Two 1s jobs sharing one CPU should both finish around 2s.
	for i, e := range ends {
		if e < 1900*time.Millisecond || e > 2100*time.Millisecond {
			t.Fatalf("job%d ended at %v, want ~2s", i, e)
		}
	}
	if cpu.BusyTime(s.Now()) != 2*time.Second {
		t.Fatalf("busy = %v, want 2s", cpu.BusyTime(s.Now()))
	}
}

func TestCPULoadAverageRisesAndDecays(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s, 10*time.Millisecond)
	cpu.SetHalfLife(10 * time.Second)
	var during, after float64
	s.Spawn("load", func(env *Env) error {
		if err := cpu.Compute(env, 60*time.Second); err != nil {
			return err
		}
		during = cpu.LoadAverage(env.Now())
		return nil
	})
	s.Spawn("probe", func(env *Env) error {
		if err := env.Sleep(200 * time.Second); err != nil {
			return err
		}
		after = cpu.LoadAverage(env.Now())
		return nil
	})
	run(t, s)
	if during < 0.5 {
		t.Fatalf("load during compute = %v, want >= 0.5", during)
	}
	if after > 0.3 {
		t.Fatalf("load after idle = %v, want < 0.3", after)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	s := New(1)
	s.Spawn("z", func(env *Env) error {
		if err := env.Sleep(0); err != nil {
			return err
		}
		if err := env.Sleep(-time.Second); err != nil {
			return err
		}
		if env.Now() != 0 {
			return fmt.Errorf("time moved: %v", env.Now())
		}
		return nil
	})
	run(t, s)
}

func TestYieldInterleaving(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(env *Env) error {
		order = append(order, "a1")
		if err := env.Yield(); err != nil {
			return err
		}
		order = append(order, "a2")
		return nil
	})
	s.Spawn("b", func(env *Env) error {
		order = append(order, "b1")
		return nil
	})
	run(t, s)
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceWaitTimeAccounting(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	for i := 0; i < 2; i++ {
		s.Spawn(fmt.Sprintf("u%d", i), func(env *Env) error {
			return r.Use(env, time.Second)
		})
	}
	run(t, s)
	if r.WaitTime() != time.Second {
		t.Fatalf("wait = %v, want 1s", r.WaitTime())
	}
	if r.Acquired() != 2 {
		t.Fatalf("acquired = %d, want 2", r.Acquired())
	}
}
