package sim

import "errors"

// ErrConfinedContract is the sentinel behind every confined-contract
// violation (DESIGN.md §14): an operation that is inherently cross-shard —
// host crashes, migration abort recovery, process-family calls from a
// migrated process — was attempted on a cluster running with hosts confined
// to their own shards. The violation is raised as a panic carrying a
// *ConfinedContractError (so a misconfigured chaos suite fails loudly at
// the offending instant rather than corrupting the replay), and surfaces as
// the activity's error; match it with errors.Is(err, sim.ErrConfinedContract)
// and unpack host/reason context with errors.As.
var ErrConfinedContract = errors.New("confined contract violation (DESIGN.md §14)")

// ConfinedContractError carries the context of one confined-contract
// violation: which operation, on which host, and why the contract excludes
// it. It unwraps to ErrConfinedContract.
type ConfinedContractError struct {
	Op     string // the forbidden operation ("CrashHost", "migration abort", "Fork", ...)
	Host   string // the host (or process) the operation targeted, if known
	Reason string // why the contract excludes it, or the triggering error
}

func (e *ConfinedContractError) Error() string {
	s := e.Op
	if e.Host != "" {
		s += " for " + e.Host
	}
	s += " is not supported under host confinement (DESIGN.md §14)"
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	return s
}

func (e *ConfinedContractError) Unwrap() error { return ErrConfinedContract }
