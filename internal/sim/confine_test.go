package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Tests for the per-host confinement primitives: shard-homed mailboxes
// (deliveries dispatched inside windows by the owning worker), the
// delay == lookahead window-boundary case, Env.Rehome, and daemon service
// loops. Every equivalence test runs the same program under the serial
// oracle and the parallel kernel at several worker counts and requires the
// full fingerprint — digest, stats, trace, clock — to be byte-identical.

// runHomedProg exercises the RPC shape: every shard owns a request mailbox
// homed to it, a daemon server loop drains it, and client activities on
// other shards send requests and block on per-call reply mailboxes homed to
// their own shard. All sends use delay >= lookahead; some use exactly
// lookahead, which lands exactly on the window horizon.
func runHomedProg(seed int64, shards, workers int, lookahead time.Duration) kernelFP {
	s := New(seed)
	s.SetLookahead(lookahead)
	if workers > 0 {
		s.ConfigureParallel(workers)
	}
	var traceB strings.Builder
	s.SetTraceSink(func(at time.Duration, kind, detail string) {
		fmt.Fprintf(&traceB, "%d %s %s\n", at, kind, detail)
	})

	// Per-shard request mailboxes, homed to their shard.
	boxes := make([]*Mailbox, shards+1)
	for sh := 1; sh <= shards; sh++ {
		boxes[sh] = NewMailboxOn(s, sh, lookahead)
	}
	type req struct {
		from  int
		reply *Mailbox
		step  int
	}
	// Server daemon per shard: replies after a small shard-local service
	// time, with the reply delayed by exactly lookahead plus a deterministic
	// size-dependent extra.
	for sh := 1; sh <= shards; sh++ {
		shard := sh
		s.SpawnOn(shard, fmt.Sprintf("server-%d", shard), func(env *Env) error {
			env.MarkDaemon()
			for {
				v, err := boxes[shard].Recv(env)
				if err != nil {
					return nil
				}
				rq := v.(req)
				if err := env.Sleep(time.Duration(rq.step%3) * 100 * time.Microsecond); err != nil {
					return nil
				}
				extra := time.Duration(rq.step%2) * 50 * time.Microsecond
				rq.reply.SendAfter(env, fmt.Sprintf("ok-%d-%d", shard, rq.step), lookahead+extra)
			}
		})
	}
	// Client per shard: calls the next shard around the ring. Half the
	// requests travel with delay exactly == lookahead (the boundary case).
	for sh := 1; sh <= shards; sh++ {
		shard := sh
		s.SpawnOn(shard, fmt.Sprintf("client-%d", shard), func(env *Env) error {
			r := env.LocalRand()
			reply := NewMailboxOn(s, shard, lookahead)
			for step := 0; step < 25; step++ {
				target := shard%shards + 1
				delay := lookahead
				if step%2 == 1 {
					delay += time.Duration(r.Intn(400)) * time.Microsecond
				}
				boxes[target].SendAfter(env, req{from: shard, reply: reply, step: step}, delay)
				v, err := reply.Recv(env)
				if err != nil {
					return nil
				}
				env.Emit("reply", fmt.Sprintf("%s got %v", env.Name(), v))
				if err := env.Sleep(time.Duration(r.Intn(900)) * time.Microsecond); err != nil {
					return nil
				}
			}
			return nil
		})
	}
	// An exclusive ticker so shard-0 blockers interleave with windows.
	s.Spawn("ticker", func(env *Env) error {
		for i := 0; i < 10; i++ {
			if err := env.Sleep(3 * time.Millisecond); err != nil {
				return nil
			}
		}
		return nil
	})

	err := s.Run(0)
	fp := kernelFP{digest: s.OrderDigest(), stats: s.Stats(), now: s.Now()}
	if err != nil {
		fp.runErr = err.Error()
	}
	fp.trace = traceB.String()
	if s.LiveActivities() != 0 {
		fp.errs = fmt.Sprintf("leaked %d activities", s.LiveActivities())
	}
	return fp
}

func TestShardHomedMailboxEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		want := runHomedProg(seed, 6, 0, 500*time.Microsecond)
		if want.runErr != "" || want.errs != "" {
			t.Fatalf("seed %d serial run unhealthy: %v", seed, want)
		}
		for _, w := range []int{1, 2, 4, 8} {
			got := runHomedProg(seed, 6, w, 500*time.Microsecond)
			if got != want {
				t.Fatalf("seed %d workers=%d diverged:\nserial: %v\nparallel: %v", seed, w, want, got)
			}
		}
	}
}

// TestMailboxBoundaryDelayEqualsLookahead pins the window-boundary case: a
// send whose delay is exactly the lookahead lands exactly on the horizon of
// the window that issued it, so it must be excluded from that window and
// committed in the next one — in the same (time, seq) position the serial
// kernel gives it. Two shards ping-pong at exactly lookahead spacing, so
// every delivery in the run sits on a boundary.
func TestMailboxBoundaryDelayEqualsLookahead(t *testing.T) {
	const la = 500 * time.Microsecond
	run := func(workers int) kernelFP {
		s := New(11)
		s.SetLookahead(la)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		var traceB strings.Builder
		s.SetTraceSink(func(at time.Duration, kind, detail string) {
			fmt.Fprintf(&traceB, "%d %s %s\n", at, kind, detail)
		})
		a := NewMailboxOn(s, 1, la)
		b := NewMailboxOn(s, 2, la)
		s.SpawnOn(1, "ping", func(env *Env) error {
			for i := 0; i < 40; i++ {
				b.Send(env, i) // delay == lookahead exactly
				v, err := a.Recv(env)
				if err != nil {
					return nil
				}
				env.Emit("pong", fmt.Sprintf("%v@%d", v, env.Now()/time.Microsecond))
			}
			return nil
		})
		s.SpawnOn(2, "pong", func(env *Env) error {
			env.MarkDaemon()
			for {
				v, err := b.Recv(env)
				if err != nil {
					return nil
				}
				a.Send(env, v) // delay == lookahead exactly
			}
		})
		err := s.Run(0)
		fp := kernelFP{digest: s.OrderDigest(), stats: s.Stats(), now: s.Now()}
		if err != nil {
			fp.runErr = err.Error()
		}
		fp.trace = traceB.String()
		if s.LiveActivities() != 0 {
			fp.errs = fmt.Sprintf("leaked %d activities", s.LiveActivities())
		}
		return fp
	}
	want := run(0)
	if want.runErr != "" || want.errs != "" {
		t.Fatalf("serial run unhealthy: %v", want)
	}
	// 40 round trips at exactly 2*lookahead each.
	if want.now != 40*2*la {
		t.Fatalf("boundary timing wrong: now=%v want %v", want.now, 40*2*la)
	}
	for _, w := range []int{1, 2, 4, 8} {
		got := run(w)
		if got != want {
			t.Fatalf("workers=%d diverged at the delay==lookahead boundary:\nserial: %v\nparallel: %v", w, want, got)
		}
	}
}

// runRehomeProg: activities hop between shards with Env.Rehome, doing
// shard-local work (LocalRand sleeps, child spawns, trace emissions) at each
// stop. A hop's wake must commit on the new shard in the serial position.
func runRehomeProg(seed int64, shards, workers int, lookahead time.Duration) kernelFP {
	s := New(seed)
	s.SetLookahead(lookahead)
	if workers > 0 {
		s.ConfigureParallel(workers)
	}
	var traceB strings.Builder
	s.SetTraceSink(func(at time.Duration, kind, detail string) {
		fmt.Fprintf(&traceB, "%d %s %s\n", at, kind, detail)
	})
	// Resident daemon per shard so every shard has local activity the
	// hoppers interleave with.
	for sh := 1; sh <= shards; sh++ {
		shard := sh
		s.SpawnOn(shard, fmt.Sprintf("resident-%d", shard), func(env *Env) error {
			r := env.LocalRand()
			for i := 0; i < 30; i++ {
				if err := env.Sleep(time.Duration(r.Intn(1500)+1) * time.Microsecond); err != nil {
					return nil
				}
			}
			return nil
		})
	}
	for h := 0; h < shards; h++ {
		start := h%shards + 1
		s.SpawnOn(start, fmt.Sprintf("hopper-%d", h), func(env *Env) error {
			r := env.LocalRand()
			for hop := 0; hop < 12; hop++ {
				if err := env.Sleep(time.Duration(r.Intn(800)) * time.Microsecond); err != nil {
					return nil
				}
				env.Emit("at", fmt.Sprintf("%s shard=%d hop=%d", env.Name(), env.Shard(), hop))
				// A short-lived child on the current shard.
				f := NewFuture(s)
				env.Spawn(fmt.Sprintf("%s-child-%d", env.Name(), hop), func(c *Env) error {
					f.Complete(hop, nil)
					return nil
				})
				if _, err := f.Wait(env); err != nil {
					return nil
				}
				next := env.Shard()%shards + 1
				if err := env.Rehome(next, lookahead+time.Duration(hop%3)*100*time.Microsecond); err != nil {
					return nil
				}
			}
			return nil
		})
	}
	err := s.Run(0)
	fp := kernelFP{digest: s.OrderDigest(), stats: s.Stats(), now: s.Now()}
	if err != nil {
		fp.runErr = err.Error()
	}
	fp.trace = traceB.String()
	if s.LiveActivities() != 0 {
		fp.errs = fmt.Sprintf("leaked %d activities", s.LiveActivities())
	}
	return fp
}

func TestRehomeEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 19} {
		want := runRehomeProg(seed, 5, 0, 500*time.Microsecond)
		if want.runErr != "" || want.errs != "" {
			t.Fatalf("seed %d serial run unhealthy: %v", seed, want)
		}
		for _, w := range []int{1, 2, 4, 8} {
			got := runRehomeProg(seed, 5, w, 500*time.Microsecond)
			if got != want {
				t.Fatalf("seed %d workers=%d diverged:\nserial: %v\nparallel: %v", seed, w, want, got)
			}
		}
	}
}

func TestRehomeChangesShardAndLocalState(t *testing.T) {
	s := New(1)
	s.SetLookahead(time.Millisecond)
	var sawShard int
	s.SpawnOn(1, "mover", func(env *Env) error {
		if err := env.Rehome(7, time.Millisecond); err != nil {
			return err
		}
		sawShard = env.Shard()
		// Children spawned after the move belong to the new shard.
		env.Spawn("child", func(c *Env) error {
			if c.Shard() != 7 {
				return fmt.Errorf("child on shard %d, want 7", c.Shard())
			}
			return nil
		})
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if sawShard != 7 {
		t.Fatalf("after Rehome shard=%d, want 7", sawShard)
	}
}

func TestRehomeBelowLookaheadPanics(t *testing.T) {
	for _, workers := range []int{0, 2} {
		s := New(1)
		s.SetLookahead(time.Millisecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		s.SpawnOn(1, "mover", func(env *Env) error {
			return env.Rehome(2, 100*time.Microsecond)
		})
		err := s.Run(0)
		if err == nil || !strings.Contains(err.Error(), "below lookahead") {
			t.Fatalf("workers=%d: want below-lookahead panic, got %v", workers, err)
		}
	}
}

func TestDaemonQuiesce(t *testing.T) {
	for _, workers := range []int{0, 4} {
		s := New(1)
		s.SetLookahead(500 * time.Microsecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		box := NewMailboxOn(s, 1, 500*time.Microsecond)
		got := 0
		s.SpawnOn(1, "dispatcher", func(env *Env) error {
			env.MarkDaemon()
			for {
				if _, err := box.Recv(env); err != nil {
					return nil
				}
				got++
			}
		})
		s.SpawnOn(2, "sender", func(env *Env) error {
			for i := 0; i < 5; i++ {
				box.Send(env, i)
				if err := env.Sleep(time.Millisecond); err != nil {
					return nil
				}
			}
			return nil
		})
		if err := s.Run(0); err != nil {
			t.Fatalf("workers=%d: run with daemons should quiesce cleanly, got %v", workers, err)
		}
		if got != 5 {
			t.Fatalf("workers=%d: daemon consumed %d messages, want 5", workers, got)
		}
		if s.LiveActivities() != 0 {
			t.Fatalf("workers=%d: leaked %d activities", workers, s.LiveActivities())
		}
	}
}

func TestShardHomedMailboxForeignRecvPanics(t *testing.T) {
	s := New(1)
	s.SetLookahead(time.Millisecond)
	box := NewMailboxOn(s, 2, time.Millisecond)
	s.SpawnOn(1, "wrong", func(env *Env) error {
		_, err := box.Recv(env)
		return err
	})
	err := s.Run(0)
	if err == nil || !strings.Contains(err.Error(), "homed to shard") {
		t.Fatalf("want foreign-recv panic, got %v", err)
	}
}
