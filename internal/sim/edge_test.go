package sim

import (
	"errors"
	"testing"
	"time"
)

func TestFutureCompletesWithError(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	want := errors.New("request failed")
	var got error
	s.Spawn("w", func(env *Env) error {
		_, got = f.Wait(env)
		return nil
	})
	s.Spawn("c", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		f.Complete(nil, want)
		return nil
	})
	run(t, s)
	if !errors.Is(got, want) {
		t.Fatalf("err = %v, want %v", got, want)
	}
}

func TestFutureDoubleCompleteIsNoop(t *testing.T) {
	s := New(1)
	f := NewFuture(s)
	f.Complete(1, nil)
	f.Complete(2, nil)
	var got any
	s.Spawn("w", func(env *Env) error {
		got, _ = f.Wait(env)
		return nil
	})
	run(t, s)
	if got != 1 {
		t.Fatalf("got %v, want first value", got)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestQueueLenAndSendAfterClose(t *testing.T) {
	s := New(1)
	q := NewQueue(s)
	q.Send(1)
	q.Send(2)
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Close()
	q.Send(3) // silently dropped
	if q.Len() != 2 {
		t.Fatalf("len after closed send = %d", q.Len())
	}
}

func TestResourceUseReleasesOnSleepError(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	s.Spawn("holder", func(env *Env) error {
		// Stopped mid-Use: the resource must still be released so drain
		// does not wedge other waiters.
		_ = r.Use(env, time.Hour)
		return nil
	})
	s.Spawn("stopper", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		s.Stop()
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.LiveActivities() != 0 {
		t.Fatal("leaked activities")
	}
}

func TestSpawnAfterRunStarts(t *testing.T) {
	s := New(1)
	order := make([]string, 0, 2)
	s.Spawn("outer", func(env *Env) error {
		if err := env.Sleep(time.Second); err != nil {
			return err
		}
		env.Spawn("inner", func(ienv *Env) error {
			order = append(order, "inner@"+ienv.Now().String())
			return nil
		})
		order = append(order, "outer@"+env.Now().String())
		return env.Sleep(time.Second)
	})
	run(t, s)
	if len(order) != 2 || order[0] != "outer@1s" || order[1] != "inner@1s" {
		t.Fatalf("order = %v", order)
	}
}

func TestRandIsSeedStable(t *testing.T) {
	a, b := New(9).Rand().Int63(), New(9).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different streams")
	}
	if New(9).Rand().Int63() == New(10).Rand().Int63() {
		t.Fatal("different seeds produced identical first draws")
	}
}
