package sim

import (
	"time"
)

// CPU models a single processor shared by many activities. Compute requests
// are served in round-robin quanta through a FIFO resource, which
// approximates the processor sharing of a timesharing kernel: with n
// runnable processes, each makes progress at roughly 1/n of real speed.
//
// The CPU also maintains the exponentially-weighted load average that
// Sprite's load daemon samples for idle-host detection.
type CPU struct {
	res      *Resource
	quantum  time.Duration
	runnable int

	// Load average state (UNIX-style 1-minute EWMA, sampled on demand).
	loadAvg    float64
	lastSample time.Duration
	halfLife   time.Duration

	// Utilization accounting.
	busyStart time.Duration
	busyTotal time.Duration
}

// NewCPU returns a single-slot CPU with the given scheduling quantum
// (defaults to 20ms if quantum <= 0).
func NewCPU(s *Simulation, quantum time.Duration) *CPU {
	if quantum <= 0 {
		quantum = 20 * time.Millisecond
	}
	return &CPU{
		res:      NewResource(s, 1),
		quantum:  quantum,
		halfLife: 30 * time.Second,
	}
}

// Compute consumes total of CPU time, sharing the processor with other
// running activities quantum by quantum.
func (c *CPU) Compute(env *Env, total time.Duration) error {
	if total <= 0 {
		return nil
	}
	c.enterRunnable(env)
	defer c.exitRunnable(env)
	remaining := total
	for remaining > 0 {
		slice := c.quantum
		if remaining < slice {
			slice = remaining
		}
		if err := c.res.Acquire(env); err != nil {
			return err
		}
		err := env.Sleep(slice)
		c.res.ReleaseEnv(env)
		if err != nil {
			return err
		}
		remaining -= slice
	}
	return nil
}

func (c *CPU) enterRunnable(env *Env) {
	c.sample(env.Now())
	c.runnable++
	if c.runnable == 1 {
		c.busyStart = env.Now()
	}
}

func (c *CPU) exitRunnable(env *Env) {
	c.sample(env.Now())
	c.runnable--
	if c.runnable == 0 {
		c.busyTotal += env.Now() - c.busyStart
	}
}

// sample folds the elapsed interval into the EWMA load average.
func (c *CPU) sample(now time.Duration) {
	dt := now - c.lastSample
	if dt <= 0 {
		return
	}
	c.lastSample = now
	// decay factor for an EWMA with the configured half-life
	alpha := 1.0
	if c.halfLife > 0 {
		alpha = float64(dt) / float64(c.halfLife)
		if alpha > 1 {
			alpha = 1
		}
	}
	c.loadAvg += alpha * (float64(c.runnable) - c.loadAvg)
}

// LoadAverage returns the smoothed count of runnable processes as of now.
func (c *CPU) LoadAverage(now time.Duration) float64 {
	c.sample(now)
	return c.loadAvg
}

// Runnable returns the instantaneous number of runnable processes.
func (c *CPU) Runnable() int { return c.runnable }

// BusyTime returns the cumulative virtual time during which the CPU had at
// least one runnable process, as of now.
func (c *CPU) BusyTime(now time.Duration) time.Duration {
	t := c.busyTotal
	if c.runnable > 0 {
		t += now - c.busyStart
	}
	return t
}

// SetHalfLife adjusts the load-average smoothing constant.
func (c *CPU) SetHalfLife(d time.Duration) { c.halfLife = d }
