package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Equivalence harness: run one deterministic confined-shard program under a
// kernel configuration and fingerprint everything observable — committed
// order digest, scheduler stats, trace bytes, errors, the clock, and the
// messages the exclusive supervisor collected from the shards' mailboxes.
// ---------------------------------------------------------------------------

type kernelFP struct {
	digest uint64
	stats  Stats
	trace  string
	errs   string
	now    time.Duration
	inbox  string
	runErr string
}

func (fp kernelFP) String() string {
	return fmt.Sprintf("digest=%016x stats=%+v now=%v runErr=%q\nerrs=%q\ninbox=%q\ntrace=%q",
		fp.digest, fp.stats, fp.now, fp.runErr, fp.errs, fp.inbox, fp.trace)
}

type progCfg struct {
	seed      int64
	shards    int
	daemons   int // daemons per shard
	lookahead time.Duration
	limit     time.Duration
}

// confinedProg builds a workload exercising every confined-contract
// primitive: LocalRand-paced sleeps, same-shard spawns that terminate,
// same-shard Queue/Future/Resource handoffs, trace emission, and
// cross-shard mailbox sends into an exclusive supervisor that itself wakes
// periodically (so exclusive blockers interleave with parallel windows).
func runConfinedProg(cfg progCfg, workers int) kernelFP {
	s := New(cfg.seed)
	s.SetLookahead(cfg.lookahead)
	if workers > 0 {
		s.ConfigureParallel(workers)
	}
	var traceB strings.Builder
	s.SetTraceSink(func(at time.Duration, kind, detail string) {
		fmt.Fprintf(&traceB, "%d %s %s\n", at, kind, detail)
	})

	mbox := NewMailbox(s, cfg.lookahead+time.Millisecond)
	var inboxB strings.Builder

	// Exclusive supervisor: drains the mailbox, and its periodic wakeups act
	// as shard-0 blockers that bound every window.
	s.Spawn("supervisor", func(env *Env) error {
		for {
			v, err := mbox.Recv(env)
			if err != nil {
				return nil
			}
			fmt.Fprintf(&inboxB, "%v\n", v)
		}
	})
	s.Spawn("ticker", func(env *Env) error {
		for i := 0; i < 20; i++ {
			if err := env.Sleep(7 * time.Millisecond); err != nil {
				return nil
			}
		}
		return nil
	})

	for sh := 1; sh <= cfg.shards; sh++ {
		shard := sh
		// Shard-local plumbing shared by this shard's daemons.
		q := NewQueue(s)
		res := NewResource(s, 1)
		for d := 0; d < cfg.daemons; d++ {
			di := d
			s.SpawnOn(shard, fmt.Sprintf("daemon-%d-%d", shard, di), func(env *Env) error {
				r := env.LocalRand()
				for step := 0; ; step++ {
					if err := env.Sleep(time.Duration(r.Intn(2000)+1) * time.Microsecond); err != nil {
						return nil
					}
					switch r.Intn(6) {
					case 0:
						env.Emit("tick", fmt.Sprintf("%s step=%d", env.Name(), step))
					case 1:
						q.Send(fmt.Sprintf("%s-%d", env.Name(), step))
					case 2:
						if q.Len() > 0 {
							if v, err := q.Recv(env); err == nil {
								env.Emit("recv", fmt.Sprintf("%v", v))
							} else {
								return nil
							}
						}
					case 3:
						if err := res.Use(env, time.Duration(r.Intn(500))*time.Microsecond); err != nil {
							return nil
						}
					case 4:
						mbox.Send(env, fmt.Sprintf("%s@%d", env.Name(), env.Now()/time.Microsecond))
					case 5:
						// Short-lived same-shard child joined through a Future.
						f := NewFuture(s)
						env.Spawn(fmt.Sprintf("%s-child-%d", env.Name(), step), func(c *Env) error {
							if err := c.Sleep(time.Duration(c.LocalRand().Intn(300)) * time.Microsecond); err != nil {
								return err
							}
							f.Complete(step, nil)
							return nil
						})
						if _, err := f.Wait(env); err != nil {
							return nil
						}
					}
				}
			})
		}
	}

	err := s.Run(cfg.limit)
	fp := kernelFP{
		digest: s.OrderDigest(),
		stats:  s.Stats(),
		now:    s.Now(),
	}
	if err != nil {
		fp.runErr = err.Error()
	}
	// Drain so goroutines exit and completion errors are collected in the
	// same deterministic order under both kernels.
	s.Stop()
	_ = s.Run(0)
	fp.trace = traceB.String()
	fp.inbox = inboxB.String()
	if s.LiveActivities() != 0 {
		fp.errs = fmt.Sprintf("leaked %d activities", s.LiveActivities())
	}
	return fp
}

func TestParallelMatchesSerialAcrossWorkerCounts(t *testing.T) {
	cfg := progCfg{
		seed:      42,
		shards:    7,
		daemons:   3,
		lookahead: 500 * time.Microsecond,
		limit:     120 * time.Millisecond,
	}
	want := runConfinedProg(cfg, 0) // serial oracle
	if want.runErr != "" {
		t.Fatalf("serial run failed: %v", want.runErr)
	}
	if want.stats.EventsDispatched == 0 || !strings.Contains(want.trace, "tick") {
		t.Fatalf("oracle did no work: %v", want)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := runConfinedProg(cfg, workers)
		if got != want {
			t.Errorf("workers=%d diverged from serial:\n got: %v\nwant: %v", workers, got, want)
		}
	}
}

func TestParallelEquivalenceProperty(t *testing.T) {
	// Quick-style sweep: many seeds and shapes, each compared across all
	// worker counts. Shapes are derived from the seed so the corpus drifts
	// as seeds grow.
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for i := 0; i < seeds; i++ {
		cfg := progCfg{
			seed:      int64(1000 + i*7919),
			shards:    1 + i%9,
			daemons:   1 + i%4,
			lookahead: time.Duration(i%5) * 200 * time.Microsecond,
			limit:     time.Duration(20+i%40) * time.Millisecond,
		}
		want := runConfinedProg(cfg, 0)
		for _, workers := range []int{1, 2, 4, 8} {
			got := runConfinedProg(cfg, workers)
			if got != want {
				t.Fatalf("seed=%d shards=%d daemons=%d lookahead=%v workers=%d diverged:\n got: %v\nwant: %v",
					cfg.seed, cfg.shards, cfg.daemons, cfg.lookahead, workers, got, want)
			}
		}
	}
}

// TestZeroLookaheadLockstep pins the horizon-collapse edge case: with a
// zero-latency link the lookahead is zero, every window degenerates to a
// single event (lockstep), and the parallel kernel must still match the
// serial one bit for bit rather than deadlock or reorder.
func TestZeroLookaheadLockstep(t *testing.T) {
	cfg := progCfg{
		seed:      7,
		shards:    5,
		daemons:   2,
		lookahead: 0,
		limit:     30 * time.Millisecond,
	}
	want := runConfinedProg(cfg, 0)
	for _, workers := range []int{1, 4} {
		got := runConfinedProg(cfg, workers)
		if got != want {
			t.Fatalf("lockstep workers=%d diverged:\n got: %v\nwant: %v", workers, got, want)
		}
	}
}

// TestLockstepGolden freezes the zero-lookahead committed order digest so a
// future change to window formation cannot silently shift the fallback
// path's schedule.
func TestLockstepGolden(t *testing.T) {
	cfg := progCfg{seed: 7, shards: 5, daemons: 2, lookahead: 0, limit: 30 * time.Millisecond}
	serial := runConfinedProg(cfg, 0)
	parallel := runConfinedProg(cfg, 4)
	const wantDigest uint64 = 0xa921a4ed8ee07774
	if serial.digest != wantDigest {
		t.Errorf("serial lockstep digest changed: got %#x want %#x", serial.digest, wantDigest)
	}
	if parallel.digest != wantDigest {
		t.Errorf("parallel lockstep digest changed: got %#x want %#x", parallel.digest, wantDigest)
	}
}

func TestConfinedContractGuards(t *testing.T) {
	t.Run("EnvRandPanicsOnConfined", func(t *testing.T) {
		s := New(1)
		var got error
		s.SpawnOn(1, "confined", func(env *Env) error {
			env.Rand()
			return nil
		})
		if err := s.Run(0); err != nil {
			got = err
		}
		if got == nil || !strings.Contains(got.Error(), "LocalRand") {
			t.Fatalf("want LocalRand guard panic, got %v", got)
		}
	})
	t.Run("CrossShardSpawnPanics", func(t *testing.T) {
		s := New(1)
		s.SpawnOn(1, "confined", func(env *Env) error {
			env.SpawnOn(2, "other", func(*Env) error { return nil })
			return nil
		})
		err := s.Run(0)
		if err == nil || !strings.Contains(err.Error(), "foreign shard") {
			t.Fatalf("want foreign-shard panic, got %v", err)
		}
	})
	t.Run("CrossShardWakePanicsUnderSerialOracle", func(t *testing.T) {
		s := New(1)
		q := NewQueue(s)
		s.SpawnOn(1, "receiver", func(env *Env) error {
			_, err := q.Recv(env)
			return err
		})
		s.SpawnOn(2, "sender", func(env *Env) error {
			if err := env.Sleep(time.Millisecond); err != nil {
				return err
			}
			q.Send("x") // same-instant wake across shards: contract violation
			return nil
		})
		err := s.Run(0)
		if err == nil || !strings.Contains(err.Error(), "Mailbox") {
			t.Fatalf("want cross-shard wake panic under serial oracle, got %v", err)
		}
	})
	t.Run("MailboxDelayBelowLookaheadPanics", func(t *testing.T) {
		s := New(1)
		s.SetLookahead(time.Millisecond)
		m := NewMailbox(s, 100*time.Microsecond)
		s.SpawnOn(1, "sender", func(env *Env) error {
			m.Send(env, "too fast")
			return nil
		})
		err := s.Run(0)
		if err == nil || !strings.Contains(err.Error(), "lookahead") {
			t.Fatalf("want lookahead contract panic, got %v", err)
		}
	})
	t.Run("SimulationPrimitivesGuardedOnConfined", func(t *testing.T) {
		s := New(1)
		s.SpawnOn(1, "confined", func(env *Env) error {
			env.Sim().Spawn("nope", func(*Env) error { return nil })
			return nil
		})
		err := s.Run(0)
		if err == nil || !strings.Contains(err.Error(), "must use their Env") {
			t.Fatalf("want exclusive-only guard, got %v", err)
		}
	})
}

// TestMailboxCrossShard checks ordered cross-shard delivery: two confined
// producers on different shards feed one exclusive consumer; arrival order
// is a pure function of (time, seq) and identical under both kernels.
func TestMailboxCrossShard(t *testing.T) {
	run := func(workers int) string {
		s := New(11)
		s.SetLookahead(300 * time.Microsecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		m := NewMailbox(s, 400*time.Microsecond)
		var got strings.Builder
		s.Spawn("consumer", func(env *Env) error {
			for i := 0; i < 20; i++ {
				v, err := m.Recv(env)
				if err != nil {
					return err
				}
				fmt.Fprintf(&got, "%v;", v)
			}
			return nil
		})
		for sh := 1; sh <= 2; sh++ {
			shard := sh
			s.SpawnOn(shard, fmt.Sprintf("producer-%d", shard), func(env *Env) error {
				r := env.LocalRand()
				for i := 0; i < 10; i++ {
					if err := env.Sleep(time.Duration(r.Intn(900)+100) * time.Microsecond); err != nil {
						return err
					}
					m.Send(env, fmt.Sprintf("s%d-%d@%d", shard, i, env.Now()/time.Microsecond))
				}
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return got.String()
	}
	want := run(0)
	if !strings.Contains(want, "s1-0@") || !strings.Contains(want, "s2-0@") {
		t.Fatalf("degenerate mailbox run: %q", want)
	}
	for _, workers := range []int{1, 2, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d mailbox order diverged:\n got %q\nwant %q", workers, got, want)
		}
	}
}

// TestParallelInterruptFromExclusive: fault-injection-style Interrupt of a
// confined activity from exclusive context stays deterministic.
func TestParallelInterruptFromExclusive(t *testing.T) {
	boom := errors.New("boom")
	run := func(workers int) string {
		s := New(3)
		s.SetLookahead(200 * time.Microsecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		var log strings.Builder
		victim := s.SpawnOn(1, "victim", func(env *Env) error {
			for {
				if err := env.Sleep(100 * time.Microsecond); err != nil {
					fmt.Fprintf(&log, "victim unwound at %v: %v;", env.Now(), err)
					return nil
				}
			}
		})
		s.Spawn("killer", func(env *Env) error {
			if err := env.Sleep(5 * time.Millisecond); err != nil {
				return err
			}
			victim.Interrupt(boom)
			return nil
		})
		if err := s.Run(0); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return log.String()
	}
	want := run(0)
	if !strings.Contains(want, "boom") {
		t.Fatalf("interrupt not delivered: %q", want)
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d interrupt diverged: got %q want %q", workers, got, want)
		}
	}
}
