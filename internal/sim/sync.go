package sim

import (
	"time"
)

// Future is a single-assignment value that activities can wait on. It is the
// basic building block for request/response interactions (RPC replies,
// process exit status, migration completion, ...).
type Future struct {
	sim     *Simulation
	done    bool
	value   any
	err     error
	waiters []*Env
}

// NewFuture returns an unresolved future bound to the simulation.
func NewFuture(s *Simulation) *Future {
	return &Future{sim: s}
}

// Done reports whether the future has been completed.
func (f *Future) Done() bool { return f.done }

// Complete resolves the future, waking every waiter at the current virtual
// time. Completing an already-complete future is a no-op.
func (f *Future) Complete(value any, err error) {
	if f.done {
		return
	}
	f.done = true
	f.value = value
	f.err = err
	for _, w := range f.waiters {
		w.wakeNow(nil)
	}
	f.waiters = nil
}

// Wait blocks the calling activity until the future completes, then returns
// its value and error. If the simulation stops first, it returns ErrStopped.
func (f *Future) Wait(env *Env) (any, error) {
	if !f.done {
		f.waiters = append(f.waiters, env)
		if werr := env.block(); werr != nil {
			f.dropWaiter(env)
			return nil, werr
		}
	}
	return f.value, f.err
}

// WaitTimeout is Wait with a deadline; it returns ErrTimeout if the future is
// still unresolved after d.
func (f *Future) WaitTimeout(env *Env, d time.Duration) (any, error) {
	if f.done {
		return f.value, f.err
	}
	f.waiters = append(f.waiters, env)
	env.act.wake = env.scheduleWake(d)
	// If the timer fires, block returns nil but the future is unresolved.
	if werr := env.block(); werr != nil {
		f.dropWaiter(env)
		return nil, werr
	}
	if !f.done {
		f.dropWaiter(env)
		return nil, ErrTimeout
	}
	return f.value, f.err
}

func (f *Future) dropWaiter(env *Env) {
	for i, w := range f.waiters {
		if w == env {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// Queue is an unbounded FIFO queue with blocking receive. Senders never
// block. It is the mailbox primitive used by server activities.
type Queue struct {
	sim     *Simulation
	items   []any
	waiters []*Env
	closed  bool
}

// NewQueue returns an empty queue bound to the simulation.
func NewQueue(s *Simulation) *Queue {
	return &Queue{sim: s}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Send enqueues v, waking the oldest waiter if any. Send on a closed queue is
// a silent no-op (the receiver has gone away). A waiter already woken with an
// error cannot consume the item, so the wakeup passes to the next one.
func (q *Queue) Send(v any) {
	if q.closed {
		return
	}
	q.items = append(q.items, v)
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.act.woken {
			continue
		}
		w.wakeNow(nil)
		return
	}
}

// Close wakes all waiters with ErrStopped and discards future sends.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		w.wakeNow(ErrStopped)
	}
	q.waiters = nil
}

// Recv blocks until an item is available and returns it. It returns
// ErrStopped if the queue is closed or the simulation stops.
func (q *Queue) Recv(env *Env) (any, error) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, ErrStopped
		}
		q.waiters = append(q.waiters, env)
		if werr := env.block(); werr != nil {
			q.dropWaiter(env)
			return nil, werr
		}
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, nil
}

// RecvTimeout is Recv with a deadline: it returns ErrTimeout if no item
// arrives within d. It is safe with a single receiver per queue (the RPC
// reply-mailbox shape); with several receivers a timed-out waiter could
// consume an item a concurrent Send had already woken another waiter for.
func (q *Queue) RecvTimeout(env *Env, d time.Duration) (any, error) {
	if len(q.items) == 0 {
		if q.closed {
			return nil, ErrStopped
		}
		q.waiters = append(q.waiters, env)
		env.act.wake = env.scheduleWake(d)
		if werr := env.block(); werr != nil {
			q.dropWaiter(env)
			return nil, werr
		}
		if len(q.items) == 0 {
			q.dropWaiter(env)
			return nil, ErrTimeout
		}
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, nil
}

func (q *Queue) dropWaiter(env *Env) {
	for i, w := range q.waiters {
		if w == env {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// Resource is a FIFO semaphore with a fixed number of slots. It models
// contended serial resources: a file server's CPU, the shared Ethernet
// medium, a disk arm.
type Resource struct {
	sim     *Simulation
	slots   int
	inUse   int
	waiters []*Env

	// stats
	busy      time.Duration
	lastStart time.Duration
	acquired  uint64
	waited    time.Duration
}

// NewResource returns a resource with the given number of slots (minimum 1).
func NewResource(s *Simulation, slots int) *Resource {
	if slots < 1 {
		slots = 1
	}
	return &Resource{sim: s, slots: slots}
}

// Acquire blocks until a slot is free, then claims it. Waiters are served
// strictly FIFO: Release hands its slot directly to the oldest waiter, so a
// loop of Acquire/Release cannot starve other acquirers (this is what gives
// CPU.Compute its round-robin behaviour).
func (r *Resource) Acquire(env *Env) error {
	start := env.Now()
	if r.inUse < r.slots && len(r.waiters) == 0 {
		if r.inUse == 0 {
			r.lastStart = start
		}
		r.inUse++
		r.acquired++
		return nil
	}
	r.waiters = append(r.waiters, env)
	if werr := env.block(); werr != nil {
		r.dropWaiter(env)
		return werr
	}
	// A nil wake means Release transferred its slot to us: inUse was left
	// unchanged on our behalf.
	r.acquired++
	r.waited += env.Now() - start
	return nil
}

// Release frees a slot. If anyone is waiting, the slot is transferred to the
// oldest waiter rather than returned to the pool. A waiter that has already
// been woken with an error (interrupted by fault injection, say) cannot take
// the slot — its Acquire will return that error without claiming anything —
// so it is skipped, not handed a slot it would leak.
func (r *Resource) Release() { r.releaseAt(r.sim.now) }

// ReleaseEnv is Release with the caller's execution context: inside a
// parallel window the global clock is parked at the window's start, so
// confined activities must release with their own view of time for the
// busy-time accounting to match the serial kernel exactly.
func (r *Resource) ReleaseEnv(env *Env) { r.releaseAt(env.Now()) }

func (r *Resource) releaseAt(now time.Duration) {
	if r.inUse == 0 {
		return
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if w.act.woken {
			continue
		}
		w.wakeNow(nil) // slot ownership transfers; inUse stays the same
		return
	}
	r.inUse--
	if r.inUse == 0 {
		r.busy += now - r.lastStart
	}
}

// Use acquires the resource, holds it for d of virtual time, and releases it.
// This is the common charge-a-cost-to-a-resource idiom.
func (r *Resource) Use(env *Env, d time.Duration) error {
	if err := r.Acquire(env); err != nil {
		return err
	}
	err := env.Sleep(d)
	r.releaseAt(env.Now())
	return err
}

// BusyTime returns the total virtual time during which at least one slot was
// held. QueueLen returns the number of blocked acquirers. WaitTime returns
// cumulative time spent waiting to acquire.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// QueueLen returns the number of activities currently blocked in Acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// WaitTime returns the cumulative virtual time acquirers spent queued.
func (r *Resource) WaitTime() time.Duration { return r.waited }

// Acquired returns the number of successful acquisitions.
func (r *Resource) Acquired() uint64 { return r.acquired }

func (r *Resource) dropWaiter(env *Env) {
	for i, w := range r.waiters {
		if w == env {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			return
		}
	}
}

// WaitGroup counts outstanding activities and lets one or more activities
// wait for the count to reach zero.
type WaitGroup struct {
	sim     *Simulation
	count   int
	waiters []*Env
}

// NewWaitGroup returns a wait group bound to the simulation.
func NewWaitGroup(s *Simulation) *WaitGroup {
	return &WaitGroup{sim: s}
}

// Add increments the counter by n (n may be negative; Done is Add(-1)).
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count <= 0 {
		for _, e := range w.waiters {
			e.wakeNow(nil)
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(env *Env) error {
	for w.count > 0 {
		w.waiters = append(w.waiters, env)
		if werr := env.block(); werr != nil {
			w.dropWaiter(env)
			return werr
		}
	}
	return nil
}

func (w *WaitGroup) dropWaiter(env *Env) {
	for i, e := range w.waiters {
		if e == env {
			w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
			return
		}
	}
}

// Cond is a broadcast-only condition variable: waiters block until the next
// Broadcast.
type Cond struct {
	sim     *Simulation
	waiters []*Env
}

// NewCond returns a condition variable bound to the simulation.
func NewCond(s *Simulation) *Cond {
	return &Cond{sim: s}
}

// Wait blocks the activity until the next Broadcast.
func (c *Cond) Wait(env *Env) error {
	c.waiters = append(c.waiters, env)
	if werr := env.block(); werr != nil {
		c.dropWaiter(env)
		return werr
	}
	return nil
}

func (c *Cond) dropWaiter(env *Env) {
	for i, e := range c.waiters {
		if e == env {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every current waiter.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		w.wakeNow(nil)
	}
	c.waiters = nil
}
