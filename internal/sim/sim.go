// Package sim provides a deterministic discrete-event simulator whose
// activities are ordinary goroutines.
//
// Exactly one activity runs at any instant under the serial kernel. An
// activity blocks only through the primitives on its Env (Sleep, Future.Wait,
// Queue.Recv, Resource.Acquire, ...); each of those hands control back to the
// scheduler, which resumes the activity with the earliest pending event.
// Events are ordered by (virtual time, sequence number), so a run is a pure
// function of the program and the seed: re-running a simulation reproduces it
// bit for bit.
//
// A conservative parallel kernel (ConfigureParallel, parallel.go) lifts the
// one-at-a-time restriction for shard-confined activities: activities spawned
// with SpawnOn(shard, ...) for shard > 0 may be dispatched concurrently with
// other shards inside a lookahead window, while everything on shard 0 — the
// default — keeps the exclusive serial discipline. The committed event order,
// sequence numbering, statistics, and trace output are bit-for-bit identical
// between the two kernels; the serial kernel is the oracle the equivalence
// suite checks the parallel one against. See DESIGN.md §13 for the protocol.
//
// The package is the substrate for everything else in this repository: hosts,
// kernels, RPCs, and user processes in the Sprite reproduction are all sim
// activities.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Errors returned by simulation primitives.
var (
	// ErrStopped is returned by blocking primitives when the simulation is
	// shut down while the caller is waiting.
	ErrStopped = errors.New("sim: simulation stopped")
	// ErrTimeout is returned by the *Timeout variants of blocking primitives.
	ErrTimeout = errors.New("sim: wait timed out")
	// ErrDeadlock is returned by Run when activities remain blocked but no
	// events are pending.
	ErrDeadlock = errors.New("sim: deadlock: blocked activities with empty event queue")
)

// event is a scheduled wakeup of an activity or a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	act *activity // activity to resume (nil for fn-only events)
	fn  func()    // optional callback run in scheduler context

	// shard homes an fn-only event (shard-homed mailbox deliveries): the
	// parallel kernel dispatches it on the owning shard's worker inside a
	// window instead of treating it as an exclusive blocker. Activity events
	// are homed by their activity's shard; the field is ignored for them.
	shard int

	// Parallel-kernel bookkeeping (unused by the serial kernel): rec is the
	// effect log of this event's in-window dispatch, consumed marks events a
	// worker popped (dispatched or skipped as cancelled) inside a window.
	rec      *dispatchRec
	consumed bool
}

// homeShard is the shard an event is ordered and dispatched on: the
// activity's shard for activity events, the explicit homing for fn events.
func (ev *event) homeShard() int {
	if ev.act != nil {
		return ev.act.shard
	}
	return ev.shard
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// activityState tracks where an activity is in its lifecycle.
type activityState int

const (
	stateReady activityState = iota + 1
	stateRunning
	stateBlocked
	stateDone
)

// activity is one simulated thread of control.
type activity struct {
	id       uint64
	shard    int    // 0 = exclusive (serial discipline); >0 = confined
	spawnOrd uint64 // per-shard spawn ordinal, seeds LocalRand
	name     string
	state    activityState
	resume   chan struct{} // scheduler -> activity handoff
	yield    chan struct{} // activity -> scheduler handoff
	env      *Env
	wake     *event     // pending timer event, cancelled on early wake
	woken    bool       // a wake event is already queued for this block
	err      error      // set if the activity's function returned an error
	reaped   bool       // completion bookkeeping already performed
	daemon   bool       // service loop: excluded from deadlock detection
	ctxw     *worker    // worker dispatching this activity inside a window
	lrand    *rand.Rand // lazily created shard-local random stream
}

// Stats counts scheduler work: how many events the loop dispatched, how
// many activity context switches it performed, the deepest the event queue
// ever got, and how many activities were spawned. The counters never affect
// virtual time, and both kernels produce identical values for the same
// program and seed.
type Stats struct {
	EventsDispatched uint64
	ContextSwitches  uint64
	MaxQueueDepth    int
	Spawned          uint64
}

// Simulation is a deterministic discrete-event simulator. The zero value is
// not usable; construct with New.
type Simulation struct {
	now       time.Duration
	queue     eventHeap
	free      []*event // recycled event structs, reused by schedule
	seq       uint64
	actSeq    uint64
	current   *activity
	live      map[uint64]*activity
	stopped   bool
	rng       *rand.Rand
	seed      int64
	errs      []error
	stats     Stats
	digest    uint64
	lookahead time.Duration // minimum cross-shard signalling delay
	shards    map[int]*shardMeta
	par       *parKernel // nil = serial kernel
	traceSink func(at time.Duration, kind, detail string)

	// Trace, when non-nil, receives one line per scheduler decision. It is
	// intended for debugging tests, not production use.
	Trace func(format string, args ...any)
}

// shardMeta carries per-shard deterministic state. Only the spawn ordinal
// lives here today; it seeds LocalRand identically under both kernels.
type shardMeta struct {
	spawnSeq uint64
}

// Stats returns a copy of the scheduler's event-loop counters.
func (s *Simulation) Stats() Stats { return s.stats }

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters used by OrderDigest.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// New returns a simulation whose random stream is seeded with seed.
func New(seed int64) *Simulation {
	return &Simulation{
		live:   make(map[uint64]*activity),
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
		digest: fnvOffset,
		shards: make(map[int]*shardMeta),
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Simulation) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from exclusive (shard 0) contexts: handing the single stream to
// concurrently dispatched activities would make draws depend on worker
// interleaving. Confined activities use Env.LocalRand instead; the guard
// fires identically under both kernels.
func (s *Simulation) Rand() *rand.Rand {
	s.exclusiveOnly("Rand")
	return s.rng
}

// Seed returns the seed the simulation was constructed with.
func (s *Simulation) Seed() int64 { return s.seed }

// OrderDigest returns an FNV-1a hash over the committed (time, sequence)
// event order so far. Two runs of the same program and seed — serial or
// parallel, any worker count — produce the same digest; the equivalence
// suite uses it as a cheap first-line comparison before diffing traces.
func (s *Simulation) OrderDigest() uint64 { return s.digest }

func (s *Simulation) noteCommit(at time.Duration, seq uint64) {
	h := s.digest
	x := uint64(at)
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	x = seq
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	s.digest = h
}

// SetLookahead declares the minimum virtual-time delay of any cross-shard
// interaction (typically the network propagation latency). The parallel
// kernel uses it as the conservative lookahead bound; the serial kernel
// stores it only to enforce the same Mailbox contracts, so a program that
// violates them fails identically under the oracle.
func (s *Simulation) SetLookahead(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.lookahead = d
}

// Lookahead returns the declared cross-shard lookahead.
func (s *Simulation) Lookahead() time.Duration { return s.lookahead }

// SetTraceSink installs (or with nil removes) the sink that Env.Emit
// delivers structured trace events to. Under the parallel kernel, events
// emitted inside a window are buffered and flushed in committed order, so
// the sink observes the exact serial sequence.
func (s *Simulation) SetTraceSink(fn func(at time.Duration, kind, detail string)) {
	s.traceSink = fn
}

// exclusiveOnly panics when called from a shard-confined context. The two
// kernels detect the same misuse: the serial oracle checks the running
// activity's shard, the parallel kernel additionally refuses any call that
// arrives while a window is executing.
func (s *Simulation) exclusiveOnly(op string) {
	if s.inWindow() {
		panic("sim: Simulation." + op + " called from a shard-confined activity during a parallel window; confined activities must use their Env")
	}
	if cur := s.current; cur != nil && cur.shard != 0 {
		panic("sim: Simulation." + op + " called from a shard-confined activity; confined activities must use their Env")
	}
}

func (s *Simulation) inWindow() bool { return s.par != nil && s.par.inWindow }

// Spawn registers fn as a new exclusive (shard 0) activity that becomes
// runnable at the current virtual time. It may be called before Run or from
// within a running exclusive activity. The returned Env belongs to the new
// activity.
func (s *Simulation) Spawn(name string, fn func(env *Env) error) *Env {
	s.exclusiveOnly("Spawn")
	return s.spawnOn(nil, 0, name, fn)
}

// SpawnOn registers fn as a new activity confined to the given shard.
// Shard 0 is the exclusive shard: its activities run one at a time under
// both kernels, exactly like Spawn. Shards > 0 are confined: under the
// parallel kernel their activities may run concurrently with other shards
// inside a lookahead window, so they must follow the confined contract
// (LocalRand not Rand, shard-local primitives only, Mailbox for any
// cross-shard signalling — see DESIGN.md §13). From a confined activity,
// only the activity's own shard may be spawned onto.
func (s *Simulation) SpawnOn(shard int, name string, fn func(env *Env) error) *Env {
	s.exclusiveOnly("SpawnOn")
	return s.spawnOn(nil, shard, name, fn)
}

// spawnOn creates the activity in execution context w (nil = exclusive).
func (s *Simulation) spawnOn(w *worker, shard int, name string, fn func(env *Env) error) *Env {
	if shard < 0 {
		panic("sim: SpawnOn with negative shard")
	}
	meta := s.shards[shard]
	if meta == nil {
		if w != nil {
			// A confined activity always has a meta for its own shard, and
			// may only spawn onto its own shard.
			panic("sim: confined spawn onto a foreign shard")
		}
		meta = &shardMeta{}
		s.shards[shard] = meta
	}
	a := &activity{
		shard:    shard,
		spawnOrd: meta.spawnSeq,
		name:     name,
		state:    stateReady,
		resume:   make(chan struct{}),
		yield:    make(chan struct{}),
	}
	meta.spawnSeq++
	a.env = &Env{sim: s, act: a}
	go func() {
		<-a.resume // wait for first scheduling
		err := safeRun(fn, a.env)
		a.err = err
		a.state = stateDone
		a.yield <- struct{}{}
	}()
	if w != nil {
		ev := w.scheduleLocal(w.now, a)
		w.noteSpawn(ev, a)
	} else {
		s.admit(a)
		s.schedule(s.now, a, nil)
	}
	return a.env
}

// admit performs the globally ordered half of spawning: id assignment and
// liveness registration. Under the parallel kernel, confined spawns defer
// this to the barrier replay so ids are assigned in committed order.
func (s *Simulation) admit(a *activity) {
	s.actSeq++
	a.id = s.actSeq
	s.live[a.id] = a
	s.stats.Spawned++
}

// reap performs completion bookkeeping for a finished activity, in the
// exact committed position of the dispatch that finished it.
func (s *Simulation) reap(a *activity) {
	if a.reaped {
		return
	}
	a.reaped = true
	delete(s.live, a.id)
	// An activity that bails out with ErrStopped during shutdown is not
	// a failure; it is the expected way to unwind.
	if a.err != nil && !errors.Is(a.err, ErrStopped) {
		s.errs = append(s.errs, fmt.Errorf("activity %q: %w", a.name, a.err))
	}
}

func safeRun(fn func(env *Env) error, env *Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// A panic value that is itself an error (the confined-contract
			// violations panic with *ConfinedContractError) stays matchable
			// through errors.Is/As after it surfaces as the activity error.
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("panic: %w", perr)
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	return fn(env)
}

// After schedules fn to run in scheduler context (not as an activity) after
// delay d. Use Spawn for anything that needs to block. After is an exclusive
// primitive: confined activities cannot install scheduler callbacks (the
// callback would run outside their shard's ordering domain).
func (s *Simulation) After(d time.Duration, fn func()) {
	s.exclusiveOnly("After")
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, nil, fn)
}

func (s *Simulation) schedule(at time.Duration, a *activity, fn func()) *event {
	s.seq++
	ev := s.newEvent(at, s.seq, a, fn)
	heap.Push(&s.queue, ev)
	if n := len(s.queue); n > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = n
	}
	return ev
}

// scheduleOnShard schedules an fn event homed to a confined shard. Under the
// parallel kernel the event is dispatched inside a window by the shard's
// worker; the serial kernel runs it at its (at, seq) position like any other.
func (s *Simulation) scheduleOnShard(at time.Duration, shard int, fn func()) *event {
	ev := s.schedule(at, nil, fn)
	ev.shard = shard
	return ev
}

// newEvent allocates an event, reusing the freelist when possible.
func (s *Simulation) newEvent(at time.Duration, seq uint64, a *activity, fn func()) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = event{at: at, seq: seq, act: a, fn: fn}
	} else {
		ev = &event{at: at, seq: seq, act: a, fn: fn}
	}
	return ev
}

// release recycles a popped event. Callers must have copied the fields they
// need first: the struct may be handed out again by the very next schedule.
// Safe because the only long-lived pointer into the queue — activity.wake —
// is cleared before the event is released (cancelled timers are cleared by
// wakeNow, fired timers by dispatch).
func (s *Simulation) release(ev *event) {
	*ev = event{}
	s.free = append(s.free, ev)
}

// Run executes events until the queue is empty, until time limit is reached
// (limit <= 0 means no limit), or until Stop is called. It returns the first
// error of: an activity error, a detected deadlock, or nil.
func (s *Simulation) Run(limit time.Duration) error {
	if s.par != nil {
		s.runParallel(limit)
	} else {
		s.runSerial(limit)
	}
	if s.stopped {
		s.drain()
	}
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	if !s.stopped && (limit <= 0 || s.now < limit) && len(s.live) > 0 {
		names := make([]string, 0, len(s.live))
		for _, a := range s.live {
			if !a.daemon {
				names = append(names, a.name)
			}
		}
		if len(names) == 0 {
			// Only daemon service loops remain: the run has quiesced. Unwind
			// them (they see ErrStopped) so no goroutines leak; the drain
			// happens after the last commit, so it cannot perturb the digest.
			s.drain()
			if len(s.errs) > 0 {
				return s.errs[0]
			}
			return nil
		}
		sort.Strings(names)
		return fmt.Errorf("%w: %v", ErrDeadlock, names)
	}
	return nil
}

// runSerial is the classic one-event-at-a-time loop: the oracle kernel.
func (s *Simulation) runSerial(limit time.Duration) {
	for len(s.queue) > 0 && !s.stopped {
		ev := heap.Pop(&s.queue).(*event)
		at, seq, act, fn := ev.at, ev.seq, ev.act, ev.fn
		s.release(ev)
		if act == nil && fn == nil {
			continue // cancelled timer
		}
		if limit > 0 && at > limit {
			s.now = limit
			break
		}
		if at > s.now {
			s.now = at
		}
		s.stats.EventsDispatched++
		s.noteCommit(at, seq)
		if fn != nil {
			fn()
		}
		if act != nil {
			s.dispatch(act)
		}
	}
}

// dispatch resumes activity a and waits for it to block or finish.
func (s *Simulation) dispatch(a *activity) {
	if a.state == stateDone {
		return
	}
	if s.Trace != nil {
		s.Trace("t=%v run %s", s.now, a.name)
	}
	s.stats.ContextSwitches++
	a.wake = nil
	a.state = stateRunning
	s.current = a
	a.resume <- struct{}{}
	<-a.yield
	s.current = nil
	if a.state == stateDone {
		s.reap(a)
	}
}

// Stop aborts the simulation: all blocked activities are woken with
// ErrStopped so their goroutines exit, and Run returns. Stop is an exclusive
// primitive.
func (s *Simulation) Stop() {
	s.exclusiveOnly("Stop")
	s.stopped = true
}

// drain wakes every remaining blocked activity with ErrStopped so that no
// goroutines are leaked after Run returns.
func (s *Simulation) drain() {
	// Wake the blocked activities in id order. Dispatching one can unblock
	// or spawn others, so sweep over a snapshot sorted once per pass and
	// repeat until a whole pass wakes nobody — instead of re-scanning the
	// live set for the minimum id before every single dispatch.
	snap := make([]*activity, 0, len(s.live))
	for {
		snap = snap[:0]
		for _, a := range s.live {
			if a.state == stateBlocked {
				snap = append(snap, a)
			}
		}
		if len(snap) == 0 {
			break
		}
		sort.Slice(snap, func(i, j int) bool { return snap[i].id < snap[j].id })
		for _, a := range snap {
			if a.state != stateBlocked {
				continue
			}
			a.env.wakeErr = ErrStopped
			s.dispatch(a)
		}
	}
	// Ready activities (spawned but never run) still hold queued events;
	// run them so their goroutines exit too.
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		act := ev.act
		s.release(ev)
		if act != nil && act.state != stateDone {
			act.env.wakeErr = ErrStopped
			s.dispatch(act)
		}
	}
}

// LiveActivities returns the number of activities that have been spawned but
// have not finished. It is mainly useful in tests for leak checking.
func (s *Simulation) LiveActivities() int { return len(s.live) }

// Env is an activity's handle onto the simulation. All blocking operations
// must go through an Env; an Env must only be used by the activity that owns
// it.
type Env struct {
	sim     *Simulation
	act     *activity
	wakeErr error // error to deliver at next wakeup (ErrStopped, ErrTimeout)
}

// Sim returns the underlying simulation.
func (e *Env) Sim() *Simulation { return e.sim }

// Now returns the current virtual time: inside a parallel window, the
// timestamp of the event being dispatched on this activity's worker, which
// is exactly what the serial kernel's global clock would read.
func (e *Env) Now() time.Duration {
	if w := e.act.ctxw; w != nil {
		return w.now
	}
	return e.sim.now
}

// Rand returns the simulation's deterministic random source. Confined
// activities must use LocalRand: the global stream's draw order depends on
// the interleaving of every consumer, which only shard 0 keeps fixed. The
// guard fires under both kernels, so the serial oracle rejects the same
// programs the parallel kernel would.
func (e *Env) Rand() *rand.Rand {
	if e.act.shard != 0 {
		panic("sim: Env.Rand from shard-confined activity " + e.act.name + "; use Env.LocalRand")
	}
	return e.sim.rng
}

// LocalRand returns a deterministic random stream private to this activity,
// seeded from (simulation seed, shard, per-shard spawn ordinal). The stream
// is identical under both kernels and any worker count, which makes it the
// only legal randomness source inside confined activities.
func (e *Env) LocalRand() *rand.Rand {
	if e.act.lrand == nil {
		e.act.lrand = rand.New(rand.NewSource(mixSeed(e.sim.seed, e.act.shard, e.act.spawnOrd)))
	}
	return e.act.lrand
}

// mixSeed derives an independent stream seed with a splitmix64-style hash.
func mixSeed(seed int64, shard int, ord uint64) int64 {
	z := uint64(seed) ^ (uint64(shard) * 0x9e3779b97f4a7c15) ^ (ord * 0xbf58476d1ce4e5b9)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Shard returns the shard this activity is confined to (0 = exclusive).
func (e *Env) Shard() int { return e.act.shard }

// MarkDaemon flags the calling activity as a daemon service loop: a run that
// quiesces with only daemons left (blocked in Recv, say) ends cleanly instead
// of reporting a deadlock, and the daemons are unwound with ErrStopped. The
// confined RPC dispatchers use it so bounded simulations terminate.
func (e *Env) MarkDaemon() { e.act.daemon = true }

// Rehome moves the calling activity to another shard after delay: the
// activity parks, and resumes on the new shard once the delay elapses. It
// models a thread of control physically moving between hosts (process
// migration's switch-over). The delay is a cross-shard message and must be at
// least the declared lookahead — enforced under both kernels, so the serial
// oracle rejects the same programs the parallel kernel would. After Rehome
// returns, Spawn, LocalRand seeding of children, and wake routing all follow
// the new shard. Rehoming to the current shard is just a Sleep.
func (e *Env) Rehome(shard int, delay time.Duration) error {
	a := e.act
	if shard < 0 {
		panic("sim: Rehome to negative shard")
	}
	if shard == a.shard {
		return e.Sleep(delay)
	}
	s := e.sim
	if delay < s.lookahead {
		panic(fmt.Sprintf("sim: Rehome delay %v below lookahead %v; moving shards is a cross-shard message", delay, s.lookahead))
	}
	if w := a.ctxw; w != nil {
		// In-window: the wake event must not enter this worker's local heap
		// (it belongs to the new shard); replay homes it through the global
		// queue, where the delay >= lookahead contract keeps it at or beyond
		// the window horizon.
		a.shard = shard
		a.wake = w.scheduleRemote(w.now+delay, a)
		return e.block()
	}
	a.shard = shard
	if s.shards[shard] == nil {
		s.shards[shard] = &shardMeta{}
	}
	a.wake = s.schedule(s.now+delay, a, nil)
	return e.block()
}

// Name returns the activity's name (useful in logs and errors).
func (e *Env) Name() string { return e.act.name }

// Spawn starts a new activity at the current virtual time. The child
// inherits the parent's shard, so confined activities naturally stay
// confined and exclusive activities stay exclusive.
func (e *Env) Spawn(name string, fn func(env *Env) error) *Env {
	return e.SpawnOn(e.act.shard, name, fn)
}

// SpawnOn starts a new activity on the given shard. Confined activities may
// only spawn onto their own shard; exclusive ones may spawn anywhere.
func (e *Env) SpawnOn(shard int, name string, fn func(env *Env) error) *Env {
	if w := e.act.ctxw; w != nil {
		if shard != e.act.shard {
			panic("sim: confined activity " + e.act.name + " spawning onto a foreign shard")
		}
		return e.sim.spawnOn(w, shard, name, fn)
	}
	if e.act.shard != 0 && shard != e.act.shard {
		panic("sim: confined activity " + e.act.name + " spawning onto a foreign shard")
	}
	return e.sim.spawnOn(nil, shard, name, fn)
}

// Emit delivers a structured trace event to the simulation's trace sink (a
// no-op without one). Inside a parallel window the event is buffered and
// flushed at the barrier in committed order, so sinks always observe the
// serial sequence.
func (e *Env) Emit(kind, detail string) {
	if w := e.act.ctxw; w != nil {
		w.cur.traces = append(w.cur.traces, traceEntry{at: w.now, kind: kind, detail: detail})
		return
	}
	if e.sim.traceSink != nil {
		e.sim.traceSink(e.sim.now, kind, detail)
	}
}

// block parks the activity until the scheduler resumes it, returning any
// wake error (ErrStopped or ErrTimeout) set by the waker.
func (e *Env) block() error {
	e.act.state = stateBlocked
	e.act.yield <- struct{}{}
	<-e.act.resume
	e.act.state = stateRunning
	e.act.woken = false
	err := e.wakeErr
	e.wakeErr = nil
	return err
}

// scheduleWake schedules a resume of this activity after d, in the
// activity's execution context: the global queue when running exclusively,
// the dispatching worker's local queue inside a parallel window.
func (e *Env) scheduleWake(d time.Duration) *event {
	if d < 0 {
		d = 0
	}
	if w := e.act.ctxw; w != nil {
		return w.scheduleLocal(w.now+d, e.act)
	}
	return e.sim.schedule(e.sim.now+d, e.act, nil)
}

// Sleep advances the activity's virtual time by d.
func (e *Env) Sleep(d time.Duration) error {
	e.act.wake = e.scheduleWake(d)
	return e.block()
}

// Yield reschedules the activity at the current time, letting any other
// activity scheduled for this instant run first.
func (e *Env) Yield() error { return e.Sleep(0) }

// wakeNow cancels a pending timer (if any) and schedules an immediate resume.
// Only the first wake of a given block takes effect: once a resume event is
// queued, further wakes are no-ops until the activity actually runs again
// (a second queued resume would later fire as a spurious wakeup while the
// activity is blocked on something else entirely).
func (e *Env) wakeNow(err error) {
	a := e.act
	if a.state != stateBlocked || a.woken {
		return
	}
	if a.wake != nil { // cancel pending timer
		a.wake.act = nil
		a.wake.fn = nil
		a.wake = nil
	}
	a.woken = true
	e.wakeErr = err
	s := e.sim
	if s.inWindow() {
		// The waker is a confined activity executing inside a window; the
		// confined contract restricts it to same-shard sync objects, so the
		// wakee lives on the same shard and the same worker. Waking a
		// shard-0 activity at the current instant would have to reorder
		// already-running work — that is exactly what a Mailbox exists for.
		if a.shard == 0 {
			panic("sim: wake of an exclusive (shard 0) activity from inside a parallel window; cross-shard signalling must use a Mailbox")
		}
		w := s.par.workerFor(a.shard)
		w.scheduleLocal(w.now, a)
		return
	}
	if cur := s.current; cur != nil && cur.shard != 0 && cur.shard != a.shard {
		// Serial oracle for the same contract: a confined activity waking a
		// foreign shard at the current instant would be a same-timestamp
		// cross-shard interaction, invisible to the lookahead bound.
		panic("sim: cross-shard wake at the current instant; cross-shard signalling must use a Mailbox")
	}
	s.schedule(s.now, a, nil)
}

// Interrupt poisons the activity that owns e with err: if it is blocked in
// any primitive, it is woken immediately and the primitive returns err; if it
// is ready or running, err is delivered the next time it blocks. Interrupt is
// the mechanism behind fail-stop fault injection (a crashed host's processes
// must unwind without running any more simulated work) and must be called
// from a different activity (or scheduler context), never on one's own Env.
func (e *Env) Interrupt(err error) {
	switch e.act.state {
	case stateBlocked:
		e.wakeNow(err)
	case stateDone:
		// Already finished; nothing to deliver.
	default:
		// Ready or running: poison the next block. A ready activity already
		// has a queued resume event, which will deliver this error.
		e.wakeErr = err
	}
}
