// Package sim provides a deterministic discrete-event simulator whose
// activities are ordinary goroutines.
//
// Exactly one activity runs at any instant. An activity blocks only through
// the primitives on its Env (Sleep, Future.Wait, Queue.Recv, Resource.Acquire,
// ...); each of those hands control back to the scheduler, which resumes the
// activity with the earliest pending event. Events are ordered by
// (virtual time, sequence number), so a run is a pure function of the program
// and the seed: re-running a simulation reproduces it bit for bit.
//
// The package is the substrate for everything else in this repository: hosts,
// kernels, RPCs, and user processes in the Sprite reproduction are all sim
// activities.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Errors returned by simulation primitives.
var (
	// ErrStopped is returned by blocking primitives when the simulation is
	// shut down while the caller is waiting.
	ErrStopped = errors.New("sim: simulation stopped")
	// ErrTimeout is returned by the *Timeout variants of blocking primitives.
	ErrTimeout = errors.New("sim: wait timed out")
	// ErrDeadlock is returned by Run when activities remain blocked but no
	// events are pending.
	ErrDeadlock = errors.New("sim: deadlock: blocked activities with empty event queue")
)

// event is a scheduled wakeup of an activity or a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	act *activity // activity to resume (nil for fn-only events)
	fn  func()    // optional callback run in scheduler context
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// activityState tracks where an activity is in its lifecycle.
type activityState int

const (
	stateReady activityState = iota + 1
	stateRunning
	stateBlocked
	stateDone
)

// activity is one simulated thread of control.
type activity struct {
	id     uint64
	name   string
	state  activityState
	resume chan struct{} // scheduler -> activity handoff
	env    *Env
	wake   *event // pending timer event, cancelled on early wake
	woken  bool   // a wake event is already queued for this block
	err    error  // set if the activity's function returned an error
}

// Stats counts scheduler work: how many events the loop dispatched, how
// many activity context switches it performed, the deepest the event queue
// ever got, and how many activities were spawned. The counters are plain
// increments on the single-threaded scheduler path and never affect
// virtual time.
type Stats struct {
	EventsDispatched uint64
	ContextSwitches  uint64
	MaxQueueDepth    int
	Spawned          uint64
}

// Simulation is a deterministic discrete-event simulator. The zero value is
// not usable; construct with New.
type Simulation struct {
	now     time.Duration
	queue   eventHeap
	free    []*event // recycled event structs, reused by schedule
	seq     uint64
	actSeq  uint64
	yield   chan struct{} // activity -> scheduler handoff
	current *activity
	live    map[uint64]*activity
	stopped bool
	rng     *rand.Rand
	errs    []error
	stats   Stats

	// Trace, when non-nil, receives one line per scheduler decision. It is
	// intended for debugging tests, not production use.
	Trace func(format string, args ...any)
}

// Stats returns a copy of the scheduler's event-loop counters.
func (s *Simulation) Stats() Stats { return s.stats }

// New returns a simulation whose random stream is seeded with seed.
func New(seed int64) *Simulation {
	return &Simulation{
		yield: make(chan struct{}),
		live:  make(map[uint64]*activity),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Simulation) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from within activities (or before Run), never concurrently.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Spawn registers fn as a new activity that becomes runnable at the current
// virtual time. It may be called before Run or from within a running
// activity. The returned Env belongs to the new activity.
func (s *Simulation) Spawn(name string, fn func(env *Env) error) *Env {
	s.actSeq++
	a := &activity{
		id:     s.actSeq,
		name:   name,
		state:  stateReady,
		resume: make(chan struct{}),
	}
	a.env = &Env{sim: s, act: a}
	s.live[a.id] = a
	s.stats.Spawned++
	go func() {
		<-a.resume // wait for first scheduling
		err := safeRun(fn, a.env)
		a.err = err
		a.state = stateDone
		delete(s.live, a.id)
		// An activity that bails out with ErrStopped during shutdown is not
		// a failure; it is the expected way to unwind.
		if err != nil && !errors.Is(err, ErrStopped) {
			s.errs = append(s.errs, fmt.Errorf("activity %q: %w", a.name, err))
		}
		s.yield <- struct{}{}
	}()
	s.schedule(s.now, a, nil)
	return a.env
}

func safeRun(fn func(env *Env) error, env *Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(env)
}

// After schedules fn to run in scheduler context (not as an activity) after
// delay d. Use Spawn for anything that needs to block.
func (s *Simulation) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, nil, fn)
}

func (s *Simulation) schedule(at time.Duration, a *activity, fn func()) *event {
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = event{at: at, seq: s.seq, act: a, fn: fn}
	} else {
		ev = &event{at: at, seq: s.seq, act: a, fn: fn}
	}
	heap.Push(&s.queue, ev)
	if n := len(s.queue); n > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = n
	}
	return ev
}

// release recycles a popped event. Callers must have copied the fields they
// need first: the struct may be handed out again by the very next schedule.
// Safe because the only long-lived pointer into the queue — activity.wake —
// is cleared before the event is released (cancelled timers are cleared by
// wakeNow, fired timers by dispatch).
func (s *Simulation) release(ev *event) {
	*ev = event{}
	s.free = append(s.free, ev)
}

// Run executes events until the queue is empty, until time limit is reached
// (limit <= 0 means no limit), or until Stop is called. It returns the first
// error of: an activity error, a detected deadlock, or nil.
func (s *Simulation) Run(limit time.Duration) error {
	for len(s.queue) > 0 && !s.stopped {
		ev := heap.Pop(&s.queue).(*event)
		at, act, fn := ev.at, ev.act, ev.fn
		s.release(ev)
		if act == nil && fn == nil {
			continue // cancelled timer
		}
		if limit > 0 && at > limit {
			s.now = limit
			break
		}
		if at > s.now {
			s.now = at
		}
		s.stats.EventsDispatched++
		if fn != nil {
			fn()
		}
		if act != nil {
			s.dispatch(act)
		}
	}
	if s.stopped {
		s.drain()
	}
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	if !s.stopped && (limit <= 0 || s.now < limit) && len(s.live) > 0 {
		names := make([]string, 0, len(s.live))
		for _, a := range s.live {
			names = append(names, a.name)
		}
		sort.Strings(names)
		return fmt.Errorf("%w: %v", ErrDeadlock, names)
	}
	return nil
}

// dispatch resumes activity a and waits for it to block or finish.
func (s *Simulation) dispatch(a *activity) {
	if a.state == stateDone {
		return
	}
	if s.Trace != nil {
		s.Trace("t=%v run %s", s.now, a.name)
	}
	s.stats.ContextSwitches++
	a.wake = nil
	a.state = stateRunning
	s.current = a
	a.resume <- struct{}{}
	<-s.yield
	s.current = nil
}

// Stop aborts the simulation: all blocked activities are woken with
// ErrStopped so their goroutines exit, and Run returns.
func (s *Simulation) Stop() { s.stopped = true }

// drain wakes every remaining blocked activity with ErrStopped so that no
// goroutines are leaked after Run returns.
func (s *Simulation) drain() {
	// Wake the blocked activities in id order. Dispatching one can unblock
	// or spawn others, so sweep over a snapshot sorted once per pass and
	// repeat until a whole pass wakes nobody — instead of re-scanning the
	// live set for the minimum id before every single dispatch.
	snap := make([]*activity, 0, len(s.live))
	for {
		snap = snap[:0]
		for _, a := range s.live {
			if a.state == stateBlocked {
				snap = append(snap, a)
			}
		}
		if len(snap) == 0 {
			break
		}
		sort.Slice(snap, func(i, j int) bool { return snap[i].id < snap[j].id })
		for _, a := range snap {
			if a.state != stateBlocked {
				continue
			}
			a.env.wakeErr = ErrStopped
			s.dispatch(a)
		}
	}
	// Ready activities (spawned but never run) still hold queued events;
	// run them so their goroutines exit too.
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		act := ev.act
		s.release(ev)
		if act != nil && act.state != stateDone {
			act.env.wakeErr = ErrStopped
			s.dispatch(act)
		}
	}
}

// LiveActivities returns the number of activities that have been spawned but
// have not finished. It is mainly useful in tests for leak checking.
func (s *Simulation) LiveActivities() int { return len(s.live) }

// Env is an activity's handle onto the simulation. All blocking operations
// must go through an Env; an Env must only be used by the activity that owns
// it.
type Env struct {
	sim     *Simulation
	act     *activity
	wakeErr error // error to deliver at next wakeup (ErrStopped, ErrTimeout)
}

// Sim returns the underlying simulation.
func (e *Env) Sim() *Simulation { return e.sim }

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.sim.now }

// Rand returns the simulation's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.sim.rng }

// Name returns the activity's name (useful in logs and errors).
func (e *Env) Name() string { return e.act.name }

// Spawn starts a new activity at the current virtual time.
func (e *Env) Spawn(name string, fn func(env *Env) error) *Env {
	return e.sim.Spawn(name, fn)
}

// block parks the activity until the scheduler resumes it, returning any
// wake error (ErrStopped or ErrTimeout) set by the waker.
func (e *Env) block() error {
	e.act.state = stateBlocked
	e.sim.yield <- struct{}{}
	<-e.act.resume
	e.act.state = stateRunning
	e.act.woken = false
	err := e.wakeErr
	e.wakeErr = nil
	return err
}

// Sleep advances the activity's virtual time by d.
func (e *Env) Sleep(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	e.act.wake = e.sim.schedule(e.sim.now+d, e.act, nil)
	return e.block()
}

// Yield reschedules the activity at the current time, letting any other
// activity scheduled for this instant run first.
func (e *Env) Yield() error { return e.Sleep(0) }

// wakeNow cancels a pending timer (if any) and schedules an immediate resume.
// Only the first wake of a given block takes effect: once a resume event is
// queued, further wakes are no-ops until the activity actually runs again
// (a second queued resume would later fire as a spurious wakeup while the
// activity is blocked on something else entirely).
func (e *Env) wakeNow(err error) {
	if e.act.state != stateBlocked || e.act.woken {
		return
	}
	if e.act.wake != nil { // cancel pending timer
		e.act.wake.act = nil
		e.act.wake.fn = nil
		e.act.wake = nil
	}
	e.act.woken = true
	e.wakeErr = err
	e.sim.schedule(e.sim.now, e.act, nil)
}

// Interrupt poisons the activity that owns e with err: if it is blocked in
// any primitive, it is woken immediately and the primitive returns err; if it
// is ready or running, err is delivered the next time it blocks. Interrupt is
// the mechanism behind fail-stop fault injection (a crashed host's processes
// must unwind without running any more simulated work) and must be called
// from a different activity (or scheduler context), never on one's own Env.
func (e *Env) Interrupt(err error) {
	switch e.act.state {
	case stateBlocked:
		e.wakeNow(err)
	case stateDone:
		// Already finished; nothing to deliver.
	default:
		// Ready or running: poison the next block. A ready activity already
		// has a queued resume event, which will deliver this error.
		e.wakeErr = err
	}
}
