package sim

import (
	"fmt"
	"time"
)

// Mailbox is the ordered cross-shard communication primitive of the parallel
// kernel. A send from any shard is delivered to the mailbox's queue after a
// virtual-time delay; delivery runs as a scheduler event on the mailbox's
// home shard, so arrivals are totally ordered by (time, sequence) and
// identical under both kernels.
//
// A mailbox built with NewMailbox is homed on the exclusive shard: delivery
// is an exclusive event, which totally orders it against everything else but
// also makes every delivery a window barrier. A mailbox built with
// NewMailboxOn is homed on a confined shard: deliveries are dispatched by
// that shard's worker inside lookahead windows, which is what lets confined
// hosts exchange RPC traffic without serializing the kernel. Receivers of a
// shard-homed mailbox must live on its home shard.
//
// The delay is the conservative lookahead contract: when the sender is a
// confined activity, the delay must be at least the simulation's declared
// lookahead (SetLookahead), which guarantees the delivery lands at or beyond
// the current window's horizon — never inside work that has already run.
// Both kernels enforce the contract, so a program that violates it fails
// under the serial oracle too, not only when parallelism is enabled.
type Mailbox struct {
	sim   *Simulation
	q     *Queue
	delay time.Duration
	shard int // delivery home: 0 = exclusive event, >0 = confined shard
}

// NewMailbox returns a mailbox homed on the exclusive shard whose sends
// deliver after delay.
func NewMailbox(s *Simulation, delay time.Duration) *Mailbox {
	return NewMailboxOn(s, 0, delay)
}

// NewMailboxOn returns a mailbox homed on the given shard: deliveries run as
// events of that shard, so under the parallel kernel they dispatch inside
// windows on the owning worker, and receivers must be confined to the same
// shard. Shard 0 gives the exclusive-delivery behaviour of NewMailbox.
func NewMailboxOn(s *Simulation, shard int, delay time.Duration) *Mailbox {
	if delay < 0 {
		delay = 0
	}
	if shard < 0 {
		panic("sim: NewMailboxOn with negative shard")
	}
	return &Mailbox{sim: s, q: NewQueue(s), delay: delay, shard: shard}
}

// Delay returns the mailbox's default delivery delay.
func (m *Mailbox) Delay() time.Duration { return m.delay }

// HomeShard returns the shard deliveries are homed on.
func (m *Mailbox) HomeShard() int { return m.shard }

// Send posts v for delivery after the mailbox's default delay. It never
// blocks.
func (m *Mailbox) Send(env *Env, v any) { m.SendAfter(env, v, m.delay) }

// SendAfter posts v for delivery after an explicit delay, overriding the
// mailbox default for this message — the RPC plane uses it to add
// size-dependent transfer time to the propagation latency. The confined-send
// contract (delay >= lookahead) applies exactly as in Send.
func (m *Mailbox) SendAfter(env *Env, v any, delay time.Duration) {
	s := m.sim
	if delay < 0 {
		delay = 0
	}
	if env.act.shard != 0 && delay < s.lookahead {
		panic(fmt.Sprintf("sim: Mailbox delay %v below lookahead %v on a confined send; the delivery could land inside an already-running window", delay, s.lookahead))
	}
	if w := env.act.ctxw; w != nil {
		w.cur.children = append(w.cur.children, childEntry{
			mail: &mailEntry{m: m, v: v, at: w.now + delay},
		})
		return
	}
	s.scheduleOnShard(env.Now()+delay, m.shard, func() { m.deliver(v) })
}

func (m *Mailbox) deliver(v any) { m.q.Send(v) }

// Recv blocks until a message is delivered and returns it. It returns
// ErrStopped if the mailbox is closed or the simulation stops. A shard-homed
// mailbox must be received on its home shard; the guard fires under both
// kernels.
func (m *Mailbox) Recv(env *Env) (any, error) {
	if m.shard != 0 && env.act.shard != m.shard {
		panic(fmt.Sprintf("sim: Mailbox.Recv from shard %d on a mailbox homed to shard %d", env.act.shard, m.shard))
	}
	return m.q.Recv(env)
}

// RecvTimeout is Recv with a deadline: it returns ErrTimeout if no message
// arrives within d. The RPC plane's confined call path uses it to detect
// lost replies.
func (m *Mailbox) RecvTimeout(env *Env, d time.Duration) (any, error) {
	if m.shard != 0 && env.act.shard != m.shard {
		panic(fmt.Sprintf("sim: Mailbox.Recv from shard %d on a mailbox homed to shard %d", env.act.shard, m.shard))
	}
	return m.q.RecvTimeout(env, d)
}

// Len returns the number of delivered, unconsumed messages.
func (m *Mailbox) Len() int { return m.q.Len() }

// Close wakes all waiting receivers with ErrStopped and discards future
// deliveries. Close is an exclusive operation.
func (m *Mailbox) Close() {
	m.sim.exclusiveOnly("Mailbox.Close")
	m.q.Close()
}
