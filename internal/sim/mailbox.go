package sim

import (
	"fmt"
	"time"
)

// Mailbox is the ordered cross-shard communication primitive of the parallel
// kernel. A send from any shard is delivered to the mailbox's queue after a
// fixed virtual-time delay; delivery runs as a scheduler event on the
// exclusive shard, so arrivals are totally ordered by (time, sequence) and
// identical under both kernels.
//
// The delay is the conservative lookahead contract: when the sender is a
// confined activity, the delay must be at least the simulation's declared
// lookahead (SetLookahead), which guarantees the delivery lands at or beyond
// the current window's horizon — never inside work that has already run.
// Both kernels enforce the contract, so a program that violates it fails
// under the serial oracle too, not only when parallelism is enabled.
//
// Receivers block with Recv. All receivers of one mailbox must live on the
// same shard (or on shard 0): the underlying queue's waiter list is not
// itself sharded.
type Mailbox struct {
	sim   *Simulation
	q     *Queue
	delay time.Duration
}

// NewMailbox returns a mailbox whose sends deliver after delay.
func NewMailbox(s *Simulation, delay time.Duration) *Mailbox {
	if delay < 0 {
		delay = 0
	}
	return &Mailbox{sim: s, q: NewQueue(s), delay: delay}
}

// Delay returns the mailbox's delivery delay.
func (m *Mailbox) Delay() time.Duration { return m.delay }

// Send posts v for delivery after the mailbox delay. It never blocks.
func (m *Mailbox) Send(env *Env, v any) {
	s := m.sim
	if env.act.shard != 0 && m.delay < s.lookahead {
		panic(fmt.Sprintf("sim: Mailbox delay %v below lookahead %v on a confined send; the delivery could land inside an already-running window", m.delay, s.lookahead))
	}
	if w := env.act.ctxw; w != nil {
		w.cur.children = append(w.cur.children, childEntry{
			mail: &mailEntry{m: m, v: v, at: w.now + m.delay},
		})
		return
	}
	s.schedule(env.Now()+m.delay, nil, func() { m.deliver(v) })
}

func (m *Mailbox) deliver(v any) { m.q.Send(v) }

// Recv blocks until a message is delivered and returns it. It returns
// ErrStopped if the mailbox is closed or the simulation stops.
func (m *Mailbox) Recv(env *Env) (any, error) { return m.q.Recv(env) }

// Len returns the number of delivered, unconsumed messages.
func (m *Mailbox) Len() int { return m.q.Len() }

// Close wakes all waiting receivers with ErrStopped and discards future
// deliveries. Close is an exclusive operation.
func (m *Mailbox) Close() {
	m.sim.exclusiveOnly("Mailbox.Close")
	m.q.Close()
}
