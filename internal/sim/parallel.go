package sim

// Conservative parallel kernel (DESIGN.md §13).
//
// The event heap is split into an exclusive shard 0 — every activity spawned
// with Spawn, which keeps the one-at-a-time serial discipline — and confined
// shards (SpawnOn with shard > 0) whose activities may be dispatched
// concurrently. The loop alternates between two modes:
//
//   - The head event belongs to shard 0 (or is a scheduler callback): it is
//     dispatched exclusively, exactly as the serial kernel would.
//   - The head event belongs to a confined shard: the loop peels off the
//     maximal committed prefix of confined events with at < horizon, where
//     horizon = head.at + lookahead, further bounded by the first exclusive
//     event (nothing may be reordered past it) and by the run limit. The
//     prefix is partitioned by shard onto workers; each worker dispatches its
//     shards' chains in (at, seq) order, running events it creates locally
//     (timers, wakes, spawns) while they stay below the horizon. Lookahead
//     zero collapses the window to a single event — lockstep — so the kernel
//     degrades to serial order rather than to nondeterminism.
//
// Workers never touch shared simulation state. Every effect of an in-window
// dispatch (scheduled events, spawns, mailbox posts, trace emissions) is
// buffered on a per-event record. At the barrier, replay() walks the
// committed events in (at, seq) order and performs the global half of each
// effect — sequence-number assignment, activity admission, queue accounting,
// trace flushing — exactly where the serial kernel would have. Because the
// serial kernel assigns sequence numbers at schedule time, and every event
// scheduled during a window necessarily sorts after every event that existed
// when the window formed, replay reproduces the serial numbering, statistics,
// and committed order bit for bit. Worker count and scheduling jitter cannot
// leak into results: the shard→worker map is static and nothing a worker
// does escapes its buffers until replay.

import (
	"container/heap"
	"time"
)

// provSeqBase is the provisional sequence-number floor for events created
// inside a window, before replay assigns their real numbers. Real sequence
// numbers would need ~10^12 committed events to reach it, so provisional
// events always sort after same-timestamp committed ones — exactly the
// serial kernel's schedule-time ordering.
const provSeqBase = uint64(1) << 40

// dispatchRec buffers the effects of one in-window dispatch until replay.
type dispatchRec struct {
	children []childEntry // schedule effects, in the order they were made
	traces   []traceEntry // Env.Emit output, flushed at the barrier
	finished bool         // the activity completed during this dispatch
}

// childEntry is one buffered schedule effect: a locally created event
// (timer, wake, or a spawn's first resume), a mailbox post, or a remote
// event targeting another shard (a Rehome's wake on the activity's new home).
type childEntry struct {
	ev     *event
	spawn  *activity // set when ev is a freshly spawned activity's first resume
	mail   *mailEntry
	remote bool // ev targets a foreign shard: global queue only, never local
}

type mailEntry struct {
	m  *Mailbox
	v  any
	at time.Duration
}

type traceEntry struct {
	at           time.Duration
	kind, detail string
}

// parKernel is the parallel dispatcher attached to a Simulation by
// ConfigureParallel.
type parKernel struct {
	s        *Simulation
	nworkers int
	workers  []*worker
	done     chan struct{}
	inWindow bool
	window   []*event  // scratch: the current committed prefix
	frontier eventHeap // scratch: replay ordering heap
}

// worker dispatches the confined shards mapped to it. Each shard maps to
// exactly one worker (statically, by shard number), so one shard's events
// are always executed sequentially in (at, seq) order even though different
// shards proceed concurrently.
type worker struct {
	p       *parKernel
	idx     int
	local   eventHeap // assigned window events + locally created ones
	counter uint64    // provisional sequence counter
	horizon time.Duration
	now     time.Duration // timestamp of the event being dispatched
	cur     *dispatchRec  // record of the event being dispatched
	work    chan struct{}
}

// ConfigureParallel switches the simulation to the conservative parallel
// kernel with the given worker count (minimum 1). The committed event order
// is identical to the serial kernel for any worker count; only wall-clock
// time changes. Call before Run, together with SetLookahead.
func (s *Simulation) ConfigureParallel(workers int) {
	if workers < 1 {
		workers = 1
	}
	s.par = &parKernel{s: s, nworkers: workers}
}

// Parallel reports whether the parallel kernel is configured.
func (s *Simulation) Parallel() bool { return s.par != nil }

// Workers returns the configured worker count (0 under the serial kernel).
func (s *Simulation) Workers() int {
	if s.par == nil {
		return 0
	}
	return s.par.nworkers
}

// WorkerSlot returns a stable 1-based index of the worker currently
// dispatching env's activity, or 0 when the activity is running exclusively
// (serial kernel, shard 0, or scheduler context). Sharded metrics use it to
// pick a contention-free cell; slot 0 is the shared base cell.
func WorkerSlot(env *Env) int {
	if w := env.act.ctxw; w != nil {
		return w.idx + 1
	}
	return 0
}

// workerFor maps a confined shard to its worker.
func (p *parKernel) workerFor(shard int) *worker {
	return p.workers[(shard-1)%len(p.workers)]
}

func (p *parKernel) start() {
	p.workers = make([]*worker, p.nworkers)
	p.done = make(chan struct{}, p.nworkers)
	for i := range p.workers {
		w := &worker{p: p, idx: i, work: make(chan struct{})}
		p.workers[i] = w
		go w.run()
	}
}

func (p *parKernel) stopWorkers() {
	for _, w := range p.workers {
		close(w.work)
	}
	p.workers = nil
	p.done = nil
}

// runParallel is Run's main loop under the parallel kernel.
func (s *Simulation) runParallel(limit time.Duration) {
	p := s.par
	p.start()
	defer p.stopWorkers()
	for len(s.queue) > 0 && !s.stopped {
		head := s.queue[0]
		if head.act == nil && head.fn == nil {
			heap.Pop(&s.queue)
			s.release(head)
			continue
		}
		if limit > 0 && head.at > limit {
			heap.Pop(&s.queue)
			s.release(head)
			s.now = limit
			return
		}
		if head.homeShard() == 0 {
			// Exclusive event: the serial kernel's dispatch, verbatim.
			ev := heap.Pop(&s.queue).(*event)
			at, seq, act, fn := ev.at, ev.seq, ev.act, ev.fn
			s.release(ev)
			if at > s.now {
				s.now = at
			}
			s.stats.EventsDispatched++
			s.noteCommit(at, seq)
			if fn != nil {
				fn()
			}
			if act != nil {
				s.dispatch(act)
			}
			continue
		}
		p.runWindow(limit)
	}
}

// runWindow peels the maximal committed prefix of confined events off the
// queue, dispatches it across the workers, and replays the buffered effects.
func (p *parKernel) runWindow(limit time.Duration) {
	s := p.s
	head := heap.Pop(&s.queue).(*event)
	window := append(p.window[:0], head)
	horizon := head.at + s.lookahead
	if limit > 0 && horizon > limit+1 {
		// Serial would drop everything past the limit; confined chains must
		// not run ahead of it either.
		horizon = limit + 1
	}
	for len(s.queue) > 0 {
		h := s.queue[0]
		if h.at >= horizon {
			break
		}
		if h.act != nil || h.fn != nil {
			if h.homeShard() == 0 {
				// Exclusive blocker: nothing committed in this window may
				// reorder past it, so it bounds how far locally created
				// events may run. Same-timestamp confined events already in
				// the prefix keep their smaller sequence numbers and still
				// run; same-timestamp locally created ones sort after the
				// blocker and wait.
				horizon = h.at
				break
			}
		}
		window = append(window, heap.Pop(&s.queue).(*event))
	}

	for _, ev := range window {
		if ev.act == nil && ev.fn == nil {
			ev.consumed = true // cancelled before the window formed
			continue
		}
		p.workerFor(ev.homeShard()).pushInitial(ev)
	}
	p.inWindow = true
	active := 0
	for _, w := range p.workers {
		if len(w.local) > 0 {
			w.horizon = horizon
			active++
		}
	}
	for _, w := range p.workers {
		if len(w.local) > 0 {
			w.work <- struct{}{}
		}
	}
	for i := 0; i < active; i++ {
		<-p.done
	}
	p.inWindow = false
	for _, w := range p.workers {
		// Whatever a worker did not consume was locally created past the
		// horizon; replay re-homes those through the dispatch records.
		w.local = w.local[:0]
		w.counter = 0
	}
	s.replay(window)
	p.window = window[:0]
}

// pushInitial assigns a committed window event to the worker that owns its
// shard.
func (w *worker) pushInitial(ev *event) {
	heap.Push(&w.local, ev)
}

// run is the worker loop: dispatch this worker's share of the window in
// (at, seq) order, following locally created events while they stay below
// the horizon.
func (w *worker) run() {
	for range w.work {
		for len(w.local) > 0 {
			top := w.local[0]
			if top.seq >= provSeqBase && top.at >= w.horizon {
				// A locally created event at or past the horizon: its real
				// sequence number will sort it after the window's boundary
				// event, so it must wait for a later window. Everything
				// still queued locally sorts after it; committed window
				// events (real seq, at <= horizon) have all been popped.
				break
			}
			ev := heap.Pop(&w.local).(*event)
			ev.consumed = true
			if ev.fn != nil {
				// A shard-homed scheduler callback (mailbox delivery): it runs
				// on this worker so its wakes land in this shard's local
				// order, with a record of its own for the effects.
				rec := &dispatchRec{}
				ev.rec = rec
				w.now = ev.at
				w.cur = rec
				ev.fn()
				w.cur = nil
				continue
			}
			if ev.act == nil {
				continue // cancelled while queued
			}
			a := ev.act
			if a.state == stateDone {
				continue
			}
			rec := &dispatchRec{}
			ev.rec = rec
			w.now = ev.at
			a.wake = nil
			a.state = stateRunning
			a.ctxw = w
			w.cur = rec
			a.resume <- struct{}{}
			<-a.yield
			a.ctxw = nil
			w.cur = nil
			if a.state == stateDone {
				rec.finished = true
			}
		}
		w.p.done <- struct{}{}
	}
}

// scheduleLocal buffers a schedule effect made inside a window: the event
// joins this worker's local order immediately (it may still run in this
// window if it stays below the horizon) and is recorded for replay.
func (w *worker) scheduleLocal(at time.Duration, a *activity) *event {
	w.counter++
	ev := &event{at: at, seq: provSeqBase + w.counter, act: a}
	heap.Push(&w.local, ev)
	w.cur.children = append(w.cur.children, childEntry{ev: ev})
	return ev
}

// scheduleRemote buffers a wake event for an activity that now belongs to a
// foreign shard (Env.Rehome). The event must not join this worker's local
// order — the new shard's worker owns it — so it is only recorded; replay
// homes it through the global queue, where the rehome delay's >= lookahead
// contract keeps it at or beyond the window horizon.
func (w *worker) scheduleRemote(at time.Duration, a *activity) *event {
	w.counter++
	ev := &event{at: at, seq: provSeqBase + w.counter, act: a}
	w.cur.children = append(w.cur.children, childEntry{ev: ev, remote: true})
	return ev
}

// noteSpawn marks the most recent schedule effect as a spawn, so replay
// admits the activity (id assignment, liveness) in committed order.
func (w *worker) noteSpawn(ev *event, a *activity) {
	cs := w.cur.children
	if len(cs) == 0 || cs[len(cs)-1].ev != ev {
		panic("sim: internal: spawn effect out of order")
	}
	cs[len(cs)-1].spawn = a
}

// replay commits a window: walk its events in (at, seq) order and perform
// the global half of every buffered effect exactly where the serial kernel
// would have. pending mirrors the serial kernel's queue length through the
// window so MaxQueueDepth matches bit for bit.
func (s *Simulation) replay(window []*event) {
	p := s.par
	fr := append(p.frontier[:0], window...)
	p.frontier = fr
	heap.Init(&p.frontier)
	pending := len(s.queue) + len(p.frontier)
	for len(p.frontier) > 0 {
		ev := heap.Pop(&p.frontier).(*event)
		pending--
		if ev.act == nil && ev.fn == nil {
			s.release(ev)
			continue
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		s.stats.EventsDispatched++
		s.noteCommit(ev.at, ev.seq)
		if rec := ev.rec; rec != nil {
			if ev.act != nil {
				// fn events (mailbox deliveries) are not activity dispatches:
				// the serial kernel neither traces nor counts a context
				// switch for them, so replay must not either.
				if s.Trace != nil {
					s.Trace("t=%v run %s", ev.at, ev.act.name)
				}
				s.stats.ContextSwitches++
			}
			for i := range rec.children {
				ch := &rec.children[i]
				if ch.mail != nil {
					m, v := ch.mail.m, ch.mail.v
					s.seq++
					mev := s.newEvent(ch.mail.at, s.seq, nil, func() { m.deliver(v) })
					mev.shard = m.shard
					heap.Push(&s.queue, mev)
					pending++
					if pending > s.stats.MaxQueueDepth {
						s.stats.MaxQueueDepth = pending
					}
					continue
				}
				if ch.spawn != nil {
					s.admit(ch.spawn)
				}
				if ch.remote {
					// A rehomed activity's wake: make sure its new shard has
					// deterministic spawn-ordinal state before anything runs
					// there.
					if sh := ch.ev.act; sh != nil && s.shards[sh.shard] == nil {
						s.shards[sh.shard] = &shardMeta{}
					}
				}
				s.seq++
				ch.ev.seq = s.seq
				pending++
				if pending > s.stats.MaxQueueDepth {
					s.stats.MaxQueueDepth = pending
				}
				if ch.ev.consumed {
					heap.Push(&p.frontier, ch.ev)
				} else {
					heap.Push(&s.queue, ch.ev)
				}
			}
			if s.traceSink != nil {
				for _, te := range rec.traces {
					s.traceSink(te.at, te.kind, te.detail)
				}
			}
			if rec.finished {
				s.reap(ev.act)
			}
		}
		s.release(ev)
	}
	p.frontier = p.frontier[:0]
}
