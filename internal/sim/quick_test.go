package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: virtual time as observed by any activity never decreases, for
// arbitrary sleep sequences across many activities.
func TestTimeMonotoneUnderRandomSleeps(t *testing.T) {
	f := func(seed int64, sleeps []uint16) bool {
		if len(sleeps) == 0 {
			return true
		}
		s := New(seed)
		ok := true
		var last time.Duration
		observe := func(env *Env) {
			if env.Now() < last {
				ok = false
			}
			last = env.Now()
		}
		for i := 0; i < 4; i++ {
			offset := i
			s.Spawn(fmt.Sprintf("a%d", i), func(env *Env) error {
				for j := offset; j < len(sleeps); j += 4 {
					if err := env.Sleep(time.Duration(sleeps[j]) * time.Millisecond); err != nil {
						return err
					}
					observe(env)
				}
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: under random acquire/use/release traffic a resource never
// admits more holders than it has slots, and everyone eventually finishes.
func TestResourceNeverOversubscribed(t *testing.T) {
	f := func(seed int64, slots8, users8 uint8) bool {
		slots := 1 + int(slots8%4)
		users := 1 + int(users8%8)
		s := New(seed)
		r := NewResource(s, slots)
		holders := 0
		violated := false
		for i := 0; i < users; i++ {
			s.Spawn(fmt.Sprintf("u%d", i), func(env *Env) error {
				rng := rand.New(rand.NewSource(seed + int64(i)))
				for j := 0; j < 5; j++ {
					if err := r.Acquire(env); err != nil {
						return err
					}
					holders++
					if holders > slots {
						violated = true
					}
					if err := env.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond); err != nil {
						return err
					}
					holders--
					r.Release()
				}
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			return false
		}
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a run with the same seed and program produces the same final
// virtual time and the same interleaving.
func TestRunsAreReproducible(t *testing.T) {
	run := func(seed int64) (time.Duration, string) {
		s := New(seed)
		trace := ""
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("a%d", i)
			d := time.Duration(rng.Intn(50)) * time.Millisecond
			s.Spawn(name, func(env *Env) error {
				if err := env.Sleep(d); err != nil {
					return err
				}
				trace += env.Name() + ";"
				return env.Sleep(time.Duration(env.Rand().Intn(20)) * time.Millisecond)
			})
		}
		if err := s.Run(0); err != nil {
			return 0, "err"
		}
		return s.Now(), trace
	}
	f := func(seed int64) bool {
		t1, tr1 := run(seed)
		t2, tr2 := run(seed)
		return t1 == t2 && tr1 == tr2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: WaitGroup.Wait returns exactly when the counter hits zero even
// for randomized completion orders.
func TestWaitGroupRandomizedCompletions(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 1 + int(n8%10)
		s := New(seed)
		wg := NewWaitGroup(s)
		wg.Add(n)
		var maxEnd time.Duration
		for i := 0; i < n; i++ {
			d := time.Duration((seed%7+int64(i*13))%50) * time.Millisecond
			if d > maxEnd {
				maxEnd = d
			}
			s.Spawn(fmt.Sprintf("w%d", i), func(env *Env) error {
				defer wg.Done()
				return env.Sleep(d)
			})
		}
		var wokeAt time.Duration
		s.Spawn("waiter", func(env *Env) error {
			if err := wg.Wait(env); err != nil {
				return err
			}
			wokeAt = env.Now()
			return nil
		})
		if err := s.Run(0); err != nil {
			return false
		}
		return wokeAt == maxEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
