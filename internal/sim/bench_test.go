package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEventLoop measures the scheduler's hot path: many activities
// sleeping in lockstep, so every iteration exercises schedule, the event
// heap, and dispatch. The event freelist should keep steady-state event
// allocations near zero.
func BenchmarkEventLoop(b *testing.B) {
	const (
		workers = 8
		ticks   = 500
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for w := 0; w < workers; w++ {
			s.Spawn(fmt.Sprintf("w%d", w), func(env *Env) error {
				for k := 0; k < ticks; k++ {
					if err := env.Sleep(time.Microsecond); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventLoopDrain measures shutdown: a large population of blocked
// activities unwound by Stop. The drain path should be near-linear in the
// number of activities, not quadratic.
func BenchmarkEventLoopDrain(b *testing.B) {
	const workers = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for w := 0; w < workers; w++ {
			s.Spawn(fmt.Sprintf("w%d", w), func(env *Env) error {
				err := env.Sleep(time.Hour)
				return err
			})
		}
		s.After(time.Millisecond, s.Stop)
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
