package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEventLoop measures the scheduler's hot path: many activities
// sleeping in lockstep, so every iteration exercises schedule, the event
// heap, and dispatch. The event freelist should keep steady-state event
// allocations near zero.
func BenchmarkEventLoop(b *testing.B) {
	const (
		workers = 8
		ticks   = 500
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for w := 0; w < workers; w++ {
			s.Spawn(fmt.Sprintf("w%d", w), func(env *Env) error {
				for k := 0; k < ticks; k++ {
					if err := env.Sleep(time.Microsecond); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConfined runs a population of shard-confined daemons whose ticks
// carry real CPU work (a small hash loop standing in for per-host load
// accounting), under the serial or the parallel kernel. The digest of the
// committed order is returned so the benchmark doubles as an equivalence
// smoke check.
func benchConfined(b *testing.B, workers int) {
	const (
		shards = 64
		ticks  = 200
	)
	b.ReportAllocs()
	var first uint64
	for i := 0; i < b.N; i++ {
		s := New(1)
		s.SetLookahead(time.Millisecond)
		if workers > 0 {
			s.ConfigureParallel(workers)
		}
		for sh := 1; sh <= shards; sh++ {
			s.SpawnOn(sh, fmt.Sprintf("w%d", sh), func(env *Env) error {
				h := uint64(env.Shard())
				for k := 0; k < ticks; k++ {
					if err := env.Sleep(10 * time.Microsecond); err != nil {
						return err
					}
					for j := 0; j < 4000; j++ { // per-tick bookkeeping work
						h = (h ^ uint64(j)) * 1099511628211
					}
				}
				_ = h
				return nil
			})
		}
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first = s.OrderDigest()
		} else if s.OrderDigest() != first {
			b.Fatalf("nondeterministic digest across runs: %#x vs %#x", s.OrderDigest(), first)
		}
	}
}

// BenchmarkParallelKernel compares the serial oracle against the parallel
// kernel at increasing worker counts on a confined-daemon workload
// (bench-wallclock's speedup evidence at the sim layer; E17 measures the
// same at cluster scale).
func BenchmarkParallelKernel(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchConfined(b, 0) })
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) { benchConfined(b, w) })
	}
}

// BenchmarkEventLoopDrain measures shutdown: a large population of blocked
// activities unwound by Stop. The drain path should be near-linear in the
// number of activities, not quadratic.
func BenchmarkEventLoopDrain(b *testing.B) {
	const workers = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for w := 0; w < workers; w++ {
			s.Spawn(fmt.Sprintf("w%d", w), func(env *Env) error {
				err := env.Sleep(time.Hour)
				return err
			})
		}
		s.After(time.Millisecond, s.Stop)
		if err := s.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
