// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// file-server name-lookup cost (the E5 bottleneck), delayed write-back vs
// write-through caching, network contention, eviction destination, and the
// migration-point granularity (CPU quantum). Each reports the simulated
// outcome via b.ReportMetric.
package sprite_test

import (
	"math/rand"
	"testing"
	"time"

	"sprite/internal/core"
	"sprite/internal/pmake"
	"sprite/internal/rpc"
	"sprite/internal/sim"
)

// pmakeMakespan builds a small project on `hosts` workstations with the
// given parameters and returns the makespan.
func pmakeMakespan(b *testing.B, params core.Params, hosts int) time.Duration {
	b.Helper()
	c, err := core.NewCluster(core.Options{Workstations: hosts, FileServers: 1, Seed: 17, Params: &params})
	if err != nil {
		b.Fatal(err)
	}
	for _, bin := range []string{"/bin/cc", "/bin/pmake"} {
		if err := c.SeedBinary(bin, 256<<10); err != nil {
			b.Fatal(err)
		}
	}
	proj := pmake.DefaultProjectParams()
	proj.Units = 12
	proj.CompileCPU = 2 * time.Second
	proj.LinkCPU = 2 * time.Second
	mf, err := pmake.SyntheticProject(c, rand.New(rand.NewSource(17)), proj)
	if err != nil {
		b.Fatal(err)
	}
	var remote []rpc.HostID
	for _, k := range c.Workstations()[1:] {
		remote = append(remote, k.Host())
	}
	var res *pmake.Result
	c.Boot("boot", func(env *sim.Env) error {
		p, err := c.Workstation(0).StartProcess(env, "pmake", func(ctx *core.Ctx) error {
			r, err := pmake.Run(ctx, mf, pmake.Options{Force: true, Hosts: remote})
			res = r
			return err
		}, core.ProcConfig{Binary: "/bin/pmake", CodePages: 8, HeapPages: 16, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		return err
	})
	if err := c.Run(0); err != nil {
		b.Fatal(err)
	}
	return res.Makespan
}

// BenchmarkAblationNameLookupCost shows how the file server's per-lookup
// CPU cost caps parallel-build speedup — Nelson's argument that client
// name caching would double effective server capacity.
func BenchmarkAblationNameLookupCost(b *testing.B) {
	for _, lookup := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond} {
		b.Run(lookup.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.FS.NameLookupCPU = lookup
				seq := pmakeMakespan(b, params, 1)
				par := pmakeMakespan(b, params, 8)
				speedup = float64(seq) / float64(par)
			}
			b.ReportMetric(speedup, "speedup-at-8-hosts")
		})
	}
}

// BenchmarkAblationWriteBack compares delayed write-back (Sprite) against
// write-through client caching on the build workload.
func BenchmarkAblationWriteBack(b *testing.B) {
	for _, through := range []bool{false, true} {
		name := "delayed-write-back"
		if through {
			name = "write-through"
		}
		b.Run(name, func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.FS.WriteThrough = through
				makespan = pmakeMakespan(b, params, 4)
			}
			b.ReportMetric(makespan.Seconds(), "sim-makespan-s")
		})
	}
}

// migrateDirty migrates one process with the given dirty footprint while a
// third host streams bulk file traffic over the same network, and returns
// the migration total.
func migrateDirty(b *testing.B, params core.Params, dirtyPages int, seed int64) time.Duration {
	b.Helper()
	c, err := core.NewCluster(core.Options{Workstations: 3, FileServers: 1, Seed: seed, Params: &params})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
		b.Fatal(err)
	}
	if err := c.SeedBinary("/bulk", 2<<20); err != nil {
		b.Fatal(err)
	}
	dst := c.Workstation(1)
	bulkDone := false
	c.Boot("boot", func(env *sim.Env) error {
		// Background traffic: a third host repeatedly re-reads a large
		// uncached file, keeping the wire busy.
		env.Spawn("bulk", func(benv *sim.Env) error {
			cl := c.FS().Client(c.Workstation(2).Host())
			for !bulkDone {
				if _, err := cl.ReadFile(benv, "/bulk"); err != nil {
					return err
				}
				cl.DropCaches()
			}
			return nil
		})
		p, err := c.Workstation(0).StartProcess(env, "m", func(ctx *core.Ctx) error {
			if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
				return err
			}
			return ctx.Migrate(dst.Host())
		}, core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: dirtyPages, StackPages: 2})
		if err != nil {
			return err
		}
		_, err = p.Exited().Wait(env)
		bulkDone = true
		return err
	})
	if err := c.Run(0); err != nil {
		b.Fatal(err)
	}
	return c.MigrationRecords()[0].Total
}

// BenchmarkAblationNetworkContention compares migrating 4 MB over a
// dedicated path against a shared (contended) medium while background
// traffic flows.
func BenchmarkAblationNetworkContention(b *testing.B) {
	for _, contended := range []bool{false, true} {
		name := "uncontended"
		if contended {
			name = "contended"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.Net.Contended = contended
				total = migrateDirty(b, params, 4<<20/params.VM.PageSize, int64(i))
			}
			b.ReportMetric(float64(total.Milliseconds()), "sim-ms/migration")
		})
	}
}

// BenchmarkAblationEvictionDestination compares Sprite's evict-home policy
// against re-selecting a fresh idle host: the job finishes sooner when it
// doesn't land back on its (busy) home machine.
func BenchmarkAblationEvictionDestination(b *testing.B) {
	run := func(b *testing.B, reselect bool) time.Duration {
		b.Helper()
		c, err := core.NewCluster(core.Options{Workstations: 3, FileServers: 1, Seed: 33})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
			b.Fatal(err)
		}
		home, lent, spare := c.Workstation(0), c.Workstation(1), c.Workstation(2)
		if reselect {
			// The re-select policy sends evictees to the spare host (in a
			// full system a Selector would pick it).
			lent.SetEvictionTarget(func(env *sim.Env, p *core.Process) *core.Kernel {
				return spare
			})
		}
		var done time.Duration
		c.Boot("boot", func(env *sim.Env) error {
			// Home is kept busy by its own user's work.
			if _, err := home.StartProcess(env, "local-work", func(ctx *core.Ctx) error {
				return ctx.Compute(60 * time.Second)
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1}); err != nil {
				return err
			}
			guest, err := home.StartProcess(env, "guest", func(ctx *core.Ctx) error {
				if err := ctx.Migrate(lent.Host()); err != nil {
					return err
				}
				return ctx.Compute(20 * time.Second)
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 8, StackPages: 1})
			if err != nil {
				return err
			}
			if err := env.Sleep(5 * time.Second); err != nil {
				return err
			}
			lent.NoteInput(env.Now())
			if err := lent.EvictAll(env); err != nil {
				return err
			}
			if _, err := guest.Exited().Wait(env); err != nil {
				return err
			}
			done = env.Now()
			return nil
		})
		if err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		return done
	}
	for _, reselect := range []bool{false, true} {
		name := "evict-home"
		if reselect {
			name = "evict-reselect"
		}
		b.Run(name, func(b *testing.B) {
			var done time.Duration
			for i := 0; i < b.N; i++ {
				done = run(b, reselect)
			}
			b.ReportMetric(done.Seconds(), "sim-guest-completion-s")
		})
	}
}

// BenchmarkAblationSwapServer compares migration cost with VM backing
// store on the (busy) root file server versus a dedicated swap server —
// the "scale the file system" direction the thesis's future-work chapter
// discusses.
func BenchmarkAblationSwapServer(b *testing.B) {
	run := func(b *testing.B, dedicated bool) time.Duration {
		b.Helper()
		params := core.DefaultParams()
		// A slow (Sun-3 class) server CPU makes the server, not the wire,
		// the contended resource — the regime the ablation is about.
		params.FS.BlockServerCPU = 3 * time.Millisecond
		opts := core.Options{Workstations: 2, FileServers: 1, Seed: 55, Params: &params}
		if dedicated {
			opts.FileServers = 2
			opts.ServerPrefixes = []string{"/", "/swap"}
		}
		c, err := core.NewCluster(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
			b.Fatal(err)
		}
		if err := c.SeedBinary("/bulk", 1<<20); err != nil {
			b.Fatal(err)
		}
		dst := c.Workstation(1)
		dirtyPages := 2 << 20 / c.Params().VM.PageSize
		stop := false
		var total time.Duration
		c.Boot("boot", func(env *sim.Env) error {
			// Background load hammers the root server with reads.
			env.Spawn("load", func(le *sim.Env) error {
				cl := c.FS().Client(dst.Host())
				for !stop {
					if _, err := cl.ReadFile(le, "/bulk"); err != nil {
						return err
					}
					cl.DropCaches()
				}
				return nil
			})
			p, err := c.Workstation(0).StartProcess(env, "m", func(ctx *core.Ctx) error {
				if err := ctx.TouchHeap(0, dirtyPages, true); err != nil {
					return err
				}
				return ctx.Migrate(dst.Host())
			}, core.ProcConfig{Binary: "/bin/prog", CodePages: 4, HeapPages: dirtyPages, StackPages: 2})
			if err != nil {
				return err
			}
			_, err = p.Exited().Wait(env)
			stop = true
			return err
		})
		if err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		total = c.MigrationRecords()[0].Total
		return total
	}
	for _, dedicated := range []bool{false, true} {
		name := "shared-root-server"
		if dedicated {
			name = "dedicated-swap-server"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total = run(b, dedicated)
			}
			b.ReportMetric(float64(total.Milliseconds()), "sim-ms/migration")
		})
	}
}

// BenchmarkAblationCPUQuantum measures how the scheduling quantum (the
// migration-point granularity for compute-bound processes) delays the start
// of a requested migration.
func BenchmarkAblationCPUQuantum(b *testing.B) {
	for _, quantum := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(quantum.String(), func(b *testing.B) {
			var wait time.Duration
			for i := 0; i < b.N; i++ {
				params := core.DefaultParams()
				params.CPUQuantum = quantum
				c, err := core.NewCluster(core.Options{Workstations: 2, FileServers: 1, Seed: 3, Params: &params})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.SeedBinary("/bin/prog", 64<<10); err != nil {
					b.Fatal(err)
				}
				dst := c.Workstation(1)
				c.Boot("boot", func(env *sim.Env) error {
					p, err := c.Workstation(0).StartProcess(env, "busy", func(ctx *core.Ctx) error {
						return ctx.Compute(10 * time.Second)
					}, core.ProcConfig{Binary: "/bin/prog", CodePages: 2, HeapPages: 4, StackPages: 1})
					if err != nil {
						return err
					}
					// Misaligned with every quantum size, so the request
					// waits out the remainder of the current quantum.
					if err := env.Sleep(1013 * time.Millisecond); err != nil {
						return err
					}
					t0 := env.Now()
					done := c.Workstation(0).RequestMigration(p, dst, "bench")
					if _, err := done.Wait(env); err != nil {
						return err
					}
					wait = env.Now() - t0
					_, err = p.Exited().Wait(env)
					return err
				})
				if err := c.Run(0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(wait.Milliseconds()), "sim-ms-request-to-done")
		})
	}
}
